//! Windowed views over cumulative metrics.
//!
//! The live metrics ([`Counter`], [`Gauge`], [`Histogram`]) are cumulative
//! and lock-free; hot paths never pay for windowing. Instead, the
//! telemetry [`Collector`](super::Collector) owns one windowed wrapper per
//! scraped metric and *ticks* it at the sampling interval: each tick diffs
//! the cumulative value against the previous tick and pushes the delta
//! into a bounded ring of time buckets. "Rate over the last N ticks" and
//! "rolling p50/p99" then reduce over the ring without touching the
//! producer side at all.
//!
//! Histogram windows work because the underlying buckets are monotone
//! non-decreasing: the elementwise difference of two cumulative bucket
//! snapshots is exactly the histogram of the samples recorded in between
//! (a [`WindowSummary`]), and summaries merge by elementwise addition, so
//! merging every window of a run reproduces the whole-run histogram
//! bucket-for-bucket (see the proptest at the bottom).
//!
//! Scrapes are not atomic across a histogram's count/sum/buckets (each is
//! its own relaxed atomic), so under concurrent load a single window may
//! transiently show `count != Σ buckets`; the telescoping sums still agree
//! with the cumulative totals once the producers quiesce.

use std::collections::VecDeque;
use std::time::Duration;

use super::histogram::{bucket_bounds, NUM_BUCKETS};
use super::{Counter, Gauge, Histogram};

/// Default ring capacity for windowed metrics (ticks retained).
pub const DEFAULT_WINDOWS: usize = 64;

/// The histogram of samples recorded within one collector window: the
/// elementwise bucket delta between two cumulative snapshots. Merging is
/// elementwise addition, so summaries are commutative and associative and
/// merging all windows of a run reproduces the whole-run histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSummary {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for WindowSummary {
    fn default() -> Self {
        WindowSummary::empty()
    }
}

impl WindowSummary {
    /// A summary with no samples.
    pub fn empty() -> Self {
        WindowSummary {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The whole-run summary of a cumulative histogram (a "window" from
    /// zero to now). Useful as the reference in windowing tests.
    pub fn from_histogram(h: &Histogram) -> Self {
        WindowSummary {
            buckets: h.bucket_counts(),
            count: h.count(),
            sum: h.sum(),
        }
    }

    /// Samples in this window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the samples in this window.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value, or 0.0 for an empty window.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds `other`'s samples into `self` (elementwise bucket addition).
    pub fn merge(&mut self, other: &WindowSummary) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) of the window's samples: the
    /// upper bound of the bucket holding the ⌈q·count⌉-th smallest sample
    /// (windows do not track an exact max, so unlike
    /// [`Histogram::percentile`] the bound is not clamped — the estimate
    /// stays within the same bucket). Returns 0 for an empty window.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_bounds(idx).1;
            }
        }
        // count and buckets raced (torn scrape); report the top non-empty
        // bucket's bound rather than panicking.
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(|idx| bucket_bounds(idx).1)
            .unwrap_or(0)
    }
}

/// A bounded ring of per-tick values with a rolling reducer.
#[derive(Debug, Clone)]
struct Ring<T> {
    slots: VecDeque<T>,
    cap: usize,
}

impl<T> Ring<T> {
    fn new(cap: usize) -> Self {
        Ring {
            // Grow lazily: `cap` bounds retention, not the allocation
            // (an unbounded ring must not pre-allocate usize::MAX slots).
            slots: VecDeque::with_capacity(cap.max(1).min(DEFAULT_WINDOWS)),
            cap: cap.max(1),
        }
    }

    fn push(&mut self, v: T) {
        if self.slots.len() == self.cap {
            self.slots.pop_front();
        }
        self.slots.push_back(v);
    }

    /// The newest `n` entries, oldest first.
    fn last(&self, n: usize) -> impl Iterator<Item = &T> {
        let skip = self.slots.len().saturating_sub(n);
        self.slots.iter().skip(skip)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// A [`Counter`] plus a ring of per-tick deltas.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    source: Counter,
    last: u64,
    ring: Ring<u64>,
}

impl WindowedCounter {
    /// Wraps `source`, retaining up to `windows` ticks. The current value
    /// is the baseline: the first tick reports growth from *now*.
    pub fn new(source: Counter, windows: usize) -> Self {
        let last = source.get();
        WindowedCounter {
            source,
            last,
            ring: Ring::new(windows),
        }
    }

    /// Like [`new`](Self::new) but with a zero baseline: the first tick
    /// reports the counter's whole accumulated value. This is what a
    /// collector wants when it first discovers a metric — the counts
    /// recorded before discovery belong to the first window, not to
    /// nothing.
    pub fn from_zero(source: Counter, windows: usize) -> Self {
        WindowedCounter {
            source,
            last: 0,
            ring: Ring::new(windows),
        }
    }

    /// Closes the current window: pushes the delta since the previous tick
    /// and returns it. A counter replaced or reset mid-run contributes a
    /// saturating zero delta, not a panic.
    pub fn tick(&mut self) -> u64 {
        let now = self.source.get();
        let delta = now.saturating_sub(self.last);
        self.last = now;
        self.ring.push(delta);
        delta
    }

    /// The most recent tick's delta (0 before the first tick).
    pub fn latest_delta(&self) -> u64 {
        self.ring.slots.back().copied().unwrap_or(0)
    }

    /// Sum of the newest `n` tick deltas.
    pub fn rolling_sum(&self, n: usize) -> u64 {
        self.ring.last(n).sum()
    }

    /// Events per second over the newest `n` ticks of length `interval`.
    /// Divides by the ticks actually present, so early in a run the rate
    /// reflects real elapsed time. Zero if no ticks or a zero interval.
    pub fn rate(&self, n: usize, interval: Duration) -> f64 {
        let ticks = self.ring.len().min(n.max(1));
        let secs = interval.as_secs_f64() * ticks as f64;
        if secs == 0.0 {
            return 0.0;
        }
        self.rolling_sum(n) as f64 / secs
    }
}

/// A [`Gauge`] plus a ring of per-tick sampled values.
#[derive(Debug, Clone)]
pub struct WindowedGauge {
    source: Gauge,
    ring: Ring<i64>,
}

impl WindowedGauge {
    /// Wraps `source`, retaining up to `windows` ticks.
    pub fn new(source: Gauge, windows: usize) -> Self {
        WindowedGauge {
            source,
            ring: Ring::new(windows),
        }
    }

    /// Samples the gauge into the ring and returns the sampled value.
    pub fn tick(&mut self) -> i64 {
        let v = self.source.get();
        self.ring.push(v);
        v
    }

    /// The most recent sampled value (0 before the first tick).
    pub fn latest(&self) -> i64 {
        self.ring.slots.back().copied().unwrap_or(0)
    }

    /// Largest sample among the newest `n` ticks (0 if none).
    pub fn rolling_max(&self, n: usize) -> i64 {
        self.ring.last(n).copied().max().unwrap_or(0)
    }

    /// Mean of the newest `n` samples (0.0 if none).
    pub fn rolling_avg(&self, n: usize) -> f64 {
        let ticks = self.ring.len().min(n.max(1));
        if ticks == 0 {
            return 0.0;
        }
        self.ring.last(n).sum::<i64>() as f64 / ticks as f64
    }
}

/// A [`Histogram`] plus a ring of per-tick [`WindowSummary`] deltas.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    source: Histogram,
    last_buckets: Vec<u64>,
    last_count: u64,
    last_sum: u64,
    ring: Ring<WindowSummary>,
}

impl WindowedHistogram {
    /// Wraps `source`, retaining up to `windows` ticks. The current bucket
    /// contents are the baseline.
    pub fn new(source: Histogram, windows: usize) -> Self {
        let last_buckets = source.bucket_counts();
        let last_count = source.count();
        let last_sum = source.sum();
        WindowedHistogram {
            source,
            last_buckets,
            last_count,
            last_sum,
            ring: Ring::new(windows),
        }
    }

    /// Like [`new`](Self::new) but with an empty baseline: samples
    /// recorded before wrapping land in the first window (see
    /// [`WindowedCounter::from_zero`]).
    pub fn from_zero(source: Histogram, windows: usize) -> Self {
        WindowedHistogram {
            source,
            last_buckets: vec![0; NUM_BUCKETS],
            last_count: 0,
            last_sum: 0,
            ring: Ring::new(windows),
        }
    }

    /// Closes the current window: diffs the cumulative buckets against the
    /// previous tick into a [`WindowSummary`] and pushes it.
    pub fn tick(&mut self) -> &WindowSummary {
        let buckets = self.source.bucket_counts();
        let count = self.source.count();
        let sum = self.source.sum();
        let delta = WindowSummary {
            buckets: buckets
                .iter()
                .zip(self.last_buckets.iter())
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            count: count.saturating_sub(self.last_count),
            sum: sum.saturating_sub(self.last_sum),
        };
        self.last_buckets = buckets;
        self.last_count = count;
        self.last_sum = sum;
        self.ring.push(delta);
        self.ring.slots.back().expect("just pushed")
    }

    /// The merged summary of the newest `n` windows.
    pub fn rolling(&self, n: usize) -> WindowSummary {
        let mut out = WindowSummary::empty();
        for w in self.ring.last(n) {
            out.merge(w);
        }
        out
    }

    /// The most recent single window (empty before the first tick).
    pub fn latest(&self) -> WindowSummary {
        self.ring.slots.back().cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_windows_report_deltas_and_rates() {
        let c = Counter::new();
        c.add(100); // pre-existing total is the baseline, not a delta
        let mut w = WindowedCounter::new(c.clone(), 4);
        c.add(10);
        assert_eq!(w.tick(), 10);
        c.add(30);
        assert_eq!(w.tick(), 30);
        assert_eq!(w.latest_delta(), 30);
        assert_eq!(w.rolling_sum(2), 40);
        assert_eq!(w.rate(2, Duration::from_millis(500)), 40.0);
        // The ring is bounded: push more ticks than capacity.
        for _ in 0..8 {
            w.tick();
        }
        assert_eq!(w.ring.len(), 4);
    }

    #[test]
    fn counter_reset_contributes_zero_not_panic() {
        let c = Counter::new();
        c.add(50);
        let mut w = WindowedCounter::new(c.clone(), 4);
        // Simulate a replaced counter: the windowed wrapper still holds
        // the old handle but a snapshot arrives smaller than `last`.
        let fresh = Counter::new();
        fresh.add(10);
        let mut w2 = WindowedCounter {
            source: fresh,
            last: 50,
            ring: Ring::new(4),
        };
        assert_eq!(w2.tick(), 0);
        c.add(5);
        assert_eq!(w.tick(), 5);
    }

    #[test]
    fn gauge_windows_track_latest_and_max() {
        let g = Gauge::new();
        let mut w = WindowedGauge::new(g.clone(), 4);
        g.set(10);
        w.tick();
        g.set(3);
        w.tick();
        assert_eq!(w.latest(), 3);
        assert_eq!(w.rolling_max(2), 10);
        assert_eq!(w.rolling_avg(2), 6.5);
    }

    #[test]
    fn histogram_window_isolates_the_interval() {
        let h = Histogram::new();
        h.record(5);
        let mut w = WindowedHistogram::new(h.clone(), 4);
        h.record(100);
        h.record(200);
        let win = w.tick().clone();
        assert_eq!(win.count(), 2, "baseline sample excluded");
        assert_eq!(win.sum(), 300);
        assert!(win.percentile(1.0) >= 200);
        h.record(7);
        let win2 = w.tick();
        assert_eq!(win2.count(), 1);
        assert_eq!(win2.percentile(0.5), 7, "small values are exact");
    }

    #[test]
    fn empty_window_percentile_is_zero() {
        assert_eq!(WindowSummary::empty().percentile(0.99), 0);
        assert_eq!(WindowSummary::empty().mean(), 0.0);
    }

    proptest! {
        /// Satellite guarantee: merging every per-tick window of a run
        /// reproduces the whole-run histogram exactly (buckets, count,
        /// sum), and the rolling quantile equals the whole-run bucket
        /// quantile.
        #[test]
        fn merged_windows_equal_whole_run_histogram(
            chunks in proptest::collection::vec(
                proptest::collection::vec(0u64..1_000_000_000, 0..40),
                1..12,
            ),
            q in 0.01f64..1.0,
        ) {
            let h = Histogram::new();
            let mut w = WindowedHistogram::new(h.clone(), usize::MAX);
            for chunk in &chunks {
                for &v in chunk {
                    h.record(v);
                }
                let win = w.tick();
                prop_assert_eq!(win.count(), chunk.len() as u64);
            }
            let merged = w.rolling(usize::MAX);
            let whole = WindowSummary::from_histogram(&h);
            prop_assert_eq!(&merged, &whole);
            // The windowed quantile is the unclamped upper bucket bound;
            // the live histogram clamps to the observed max. Both land in
            // the exact value's bucket.
            let win_q = merged.percentile(q);
            let live_q = h.percentile(q);
            prop_assert!(win_q >= live_q);
            if merged.count() > 0 {
                let (lo, hi) = super::bucket_bounds(
                    super::super::histogram::bucket_index(live_q),
                );
                prop_assert!(win_q >= lo && win_q <= hi,
                    "windowed q {win_q} outside live quantile bucket {lo}..={hi}");
            }
        }
    }
}
