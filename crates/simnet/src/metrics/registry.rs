//! Named metric registries and serializable snapshots.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use super::{Counter, Gauge, Histogram, HistogramSnapshot};

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of counters, gauges, and histograms. Clones share
/// the same metrics; lookup/creation takes a lock, but the returned
/// handles are lock-free, so hot paths hold a handle rather than the
/// registry.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    name: Arc<String>,
    inner: Arc<RwLock<Inner>>,
}

impl MetricsRegistry {
    /// An empty registry named `name` (e.g. `"dc0"`).
    pub fn new(name: impl Into<String>) -> Self {
        MetricsRegistry {
            name: Arc::new(name.into()),
            inner: Arc::new(RwLock::new(Inner::default())),
        }
    }

    /// The registry's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the counter named `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().counters.get(name) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return h.clone();
        }
        self.inner
            .write()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an externally created counter under `name` (replacing any
    /// previous counter with that name).
    pub fn register_counter(&self, name: impl Into<String>, counter: Counter) {
        self.inner.write().counters.insert(name.into(), counter);
    }

    /// All registered counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, Counter)> {
        self.inner
            .read()
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.clone()))
            .collect()
    }

    /// A point-in-time, serializable view of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read();
        MetricsSnapshot {
            name: (*self.name).clone(),
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A serializable point-in-time view of a [`MetricsRegistry`] (or of
/// several registries merged together).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// The registry (or merged view) this snapshot came from.
    pub name: String,
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot named `name` — a seed for [`merge`](Self::merge).
    pub fn empty(name: impl Into<String>) -> Self {
        MetricsSnapshot {
            name: name.into(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Folds `other` into `self`. Metric names are expected to be
    /// disjoint (each registry prefixes its names with its scope); on a
    /// clash, counters add, gauges take `other`'s value, and the
    /// histogram summary with more samples wins (summaries cannot be
    /// merged exactly — merge live [`super::Histogram`]s for that).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get(name) {
                Some(existing) if existing.count >= h.count => {}
                _ => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let reg = MetricsRegistry::new("dc0");
        reg.counter("dc0.batcher0.in").add(5);
        assert_eq!(reg.counter("dc0.batcher0.in").get(), 5);
        reg.gauge("dc0.flstore.hl").set(9);
        assert_eq!(reg.gauge("dc0.flstore.hl").get(), 9);
        reg.histogram("dc0.queue.latency_us").record(42);
        assert_eq!(reg.histogram("dc0.queue.latency_us").count(), 1);
    }

    #[test]
    fn register_counter_adopts_external_counter() {
        let reg = MetricsRegistry::new("dc0");
        let c = Counter::new();
        c.add(3);
        reg.register_counter("dc0.store0.in", c.clone());
        assert_eq!(reg.counter("dc0.store0.in").get(), 3);
        c.add(1);
        assert_eq!(reg.snapshot().counters["dc0.store0.in"], 4);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new("dc0");
        reg.counter("c").add(7);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(1000);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_combines_disjoint_and_sums_clashing_counters() {
        let a = MetricsRegistry::new("dc0");
        a.counter("dc0.batcher0.in").add(10);
        let b = MetricsRegistry::new("dc1");
        b.counter("dc1.batcher0.in").add(20);
        b.counter("dc0.batcher0.in").add(1); // clash: sums
        b.histogram("dc1.queue.latency_us").record(5);
        let mut merged = MetricsSnapshot::empty("cluster");
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["dc0.batcher0.in"], 11);
        assert_eq!(merged.counters["dc1.batcher0.in"], 20);
        assert_eq!(merged.histograms["dc1.queue.latency_us"].count, 1);
    }
}
