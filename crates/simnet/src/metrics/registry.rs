//! Named metric registries and serializable snapshots.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use super::{Counter, EventJournal, Gauge, Histogram, HistogramSnapshot};

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of counters, gauges, and histograms. Clones share
/// the same metrics; lookup/creation takes a lock, but the returned
/// handles are lock-free, so hot paths hold a handle rather than the
/// registry.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    name: Arc<String>,
    inner: Arc<RwLock<Inner>>,
    journal: EventJournal,
}

impl MetricsRegistry {
    /// An empty registry named `name` (e.g. `"dc0"`).
    pub fn new(name: impl Into<String>) -> Self {
        MetricsRegistry {
            name: Arc::new(name.into()),
            inner: Arc::new(RwLock::new(Inner::default())),
            journal: EventJournal::default(),
        }
    }

    /// The registry's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registry's embedded [`EventJournal`]: any component holding a
    /// registry (or a clone of one) can publish lifecycle events without
    /// extra plumbing, and the collector reads them from the same handle.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Returns the counter named `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().counters.get(name) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return h.clone();
        }
        self.inner
            .write()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an externally created counter under `name` (replacing any
    /// previous counter with that name).
    pub fn register_counter(&self, name: impl Into<String>, counter: Counter) {
        self.inner.write().counters.insert(name.into(), counter);
    }

    /// All registered counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, Counter)> {
        self.inner
            .read()
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.clone()))
            .collect()
    }

    /// All registered gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, Gauge)> {
        self.inner
            .read()
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.clone()))
            .collect()
    }

    /// All registered histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.inner
            .read()
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.clone()))
            .collect()
    }

    /// A point-in-time, serializable view of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read();
        MetricsSnapshot {
            name: (*self.name).clone(),
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A serializable point-in-time view of a [`MetricsRegistry`] (or of
/// several registries merged together).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// The registry (or merged view) this snapshot came from.
    pub name: String,
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot named `name` — a seed for [`merge`](Self::merge).
    pub fn empty(name: impl Into<String>) -> Self {
        MetricsSnapshot {
            name: name.into(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Folds `other` into `self`, collision-safely. Metric names are
    /// expected to be disjoint (each registry prefixes its names with its
    /// scope); when two registries nevertheless share a name, the incoming
    /// metric is kept under `{other.name}.{name}` (then
    /// `{other.name}#2.{name}`, `#3`, … if even that clashes) instead of
    /// silently summing or overwriting — merged snapshots never lose or
    /// conflate samples.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            let key = Self::merge_key(&self.counters, &other.name, name);
            self.counters.insert(key, *v);
        }
        for (name, v) in &other.gauges {
            let key = Self::merge_key(&self.gauges, &other.name, name);
            self.gauges.insert(key, *v);
        }
        for (name, h) in &other.histograms {
            let key = Self::merge_key(&self.histograms, &other.name, name);
            self.histograms.insert(key, h.clone());
        }
    }

    /// `name` if free in `map`, else a deterministic scope-prefixed
    /// alternative that is.
    fn merge_key<V>(map: &BTreeMap<String, V>, scope: &str, name: &str) -> String {
        if !map.contains_key(name) {
            return name.to_string();
        }
        let prefixed = format!("{scope}.{name}");
        if !map.contains_key(&prefixed) {
            return prefixed;
        }
        (2..)
            .map(|k| format!("{scope}#{k}.{name}"))
            .find(|cand| !map.contains_key(cand))
            .expect("some suffix is always free")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let reg = MetricsRegistry::new("dc0");
        reg.counter("dc0.batcher0.in").add(5);
        assert_eq!(reg.counter("dc0.batcher0.in").get(), 5);
        reg.gauge("dc0.flstore.hl").set(9);
        assert_eq!(reg.gauge("dc0.flstore.hl").get(), 9);
        reg.histogram("dc0.queue.latency_us").record(42);
        assert_eq!(reg.histogram("dc0.queue.latency_us").count(), 1);
    }

    #[test]
    fn register_counter_adopts_external_counter() {
        let reg = MetricsRegistry::new("dc0");
        let c = Counter::new();
        c.add(3);
        reg.register_counter("dc0.store0.in", c.clone());
        assert_eq!(reg.counter("dc0.store0.in").get(), 3);
        c.add(1);
        assert_eq!(reg.snapshot().counters["dc0.store0.in"], 4);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new("dc0");
        reg.counter("c").add(7);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(1000);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_combines_disjoint_names_unchanged() {
        let a = MetricsRegistry::new("dc0");
        a.counter("dc0.batcher0.in").add(10);
        let b = MetricsRegistry::new("dc1");
        b.counter("dc1.batcher0.in").add(20);
        b.histogram("dc1.queue.latency_us").record(5);
        let mut merged = MetricsSnapshot::empty("cluster");
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["dc0.batcher0.in"], 10);
        assert_eq!(merged.counters["dc1.batcher0.in"], 20);
        assert_eq!(merged.histograms["dc1.queue.latency_us"].count, 1);
    }

    #[test]
    fn merge_keeps_clashing_metrics_under_scoped_names() {
        // Regression test for the old lossy behaviour: counters used to
        // sum silently, gauges and histograms to overwrite. A clash must
        // now keep both values apart under a scope-prefixed name.
        let a = MetricsRegistry::new("dc0");
        a.counter("requests").add(10);
        a.gauge("depth").set(3);
        a.histogram("lat").record(100);
        let b = MetricsRegistry::new("corfu");
        b.counter("requests").add(1);
        b.gauge("depth").set(9);
        b.histogram("lat").record(5);
        b.histogram("lat").record(6);
        let mut merged = MetricsSnapshot::empty("all");
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(
            merged.counters["requests"], 10,
            "first arrival keeps the name"
        );
        assert_eq!(merged.counters["corfu.requests"], 1, "clash gets scoped");
        assert_eq!(merged.gauges["depth"], 3);
        assert_eq!(merged.gauges["corfu.depth"], 9);
        assert_eq!(merged.histograms["lat"].count, 1);
        assert_eq!(
            merged.histograms["corfu.lat"].count, 2,
            "no higher-count-wins"
        );

        // A third registry clashing on both the bare and the scoped name
        // still lands deterministically.
        let c = MetricsRegistry::new("corfu");
        c.counter("requests").add(7);
        c.counter("corfu.requests").add(8);
        merged.merge(&c.snapshot());
        assert_eq!(merged.counters["corfu.corfu.requests"], 8);
        assert_eq!(merged.counters["corfu#2.requests"], 7);
    }
}
