//! Observability primitives: counters, gauges, log-bucketed histograms,
//! the time-series sampler behind the paper's Fig. 9, and a named
//! [`MetricsRegistry`] whose [`MetricsSnapshot`] serializes to JSON.
//!
//! Naming scheme (see `DESIGN.md` §Observability): per-machine counters
//! are `dc{N}.{stage}{i}.in`, per-stage latency histograms are
//! `dc{N}.{stage}.latency_us`, and FLStore internals live under
//! `dc{N}.flstore.*`. Everything here is lock-free on the hot path —
//! registries take a lock only at get-or-create and snapshot time.

mod counter;
mod gauge;
mod histogram;
mod registry;
mod sampler;

pub use counter::{Counter, ThroughputMeter};
pub use gauge::Gauge;
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{MetricsRegistry, MetricsSnapshot};
pub use sampler::{sample_until, Series, TimeSeries};
