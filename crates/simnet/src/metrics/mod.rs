//! Observability primitives: counters, gauges, log-bucketed histograms,
//! the time-series sampler behind the paper's Fig. 9, a named
//! [`MetricsRegistry`] whose [`MetricsSnapshot`] serializes to JSON — and
//! the live telemetry plane layered on top: windowed views
//! ([`window`]), the structured [`EventJournal`], the background
//! [`Collector`], and the Prometheus / Chrome-trace exporters
//! ([`export`]).
//!
//! Naming scheme (see `DESIGN.md` §Observability): per-machine counters
//! are `dc{N}.{stage}{i}.in`, per-stage health gauges are
//! `dc{N}.{stage}{i}.queue.depth` / `.occupancy`, per-stage latency
//! histograms are `dc{N}.{stage}.latency_us`, and FLStore internals live
//! under `dc{N}.flstore.*`. Everything here is lock-free on the hot path —
//! registries take a lock only at get-or-create and snapshot time, and
//! windowing happens on the collector's thread, never the producer's.

mod counter;
mod gauge;
mod histogram;
mod registry;
mod sampler;

pub mod collector;
pub mod export;
pub mod journal;
pub mod window;

pub use collector::{
    Collector, CollectorConfig, CollectorHandle, LiveView, Timeline, TimelineTick,
};
pub use counter::{Counter, ThroughputMeter};
pub use export::{chrome_trace, parse_prometheus_text, prometheus_text, ChromeTrace, TraceEvent};
pub use gauge::Gauge;
pub use histogram::{Histogram, HistogramSnapshot};
pub use journal::{Event, EventJournal, EventKind};
pub use registry::{MetricsRegistry, MetricsSnapshot};
pub use sampler::{Sampler, Series, TimeSeries};
pub use window::{WindowSummary, WindowedCounter, WindowedGauge, WindowedHistogram};
