//! The background telemetry collector: one thread, many registries, a
//! unified timeline.
//!
//! A [`Collector`] scrapes every attached [`MetricsRegistry`] (cluster
//! DCs, FLStore, the CORFU baseline, ad-hoc client registries) at a fixed
//! interval. Each scrape ticks a windowed wrapper per metric (see
//! [`super::window`]) — producers pay nothing; the collector diffs
//! cumulative values on its own thread — drains each registry's
//! [`EventJournal`](super::EventJournal) through a cursor, and appends one
//! [`TimelineTick`] to a bounded [`Timeline`].
//!
//! Two consumers are served concurrently: [`CollectorHandle::live`] gives
//! dashboards (`chariots-top`, the future autoscaling loop) rolling rates,
//! gauge values, windowed quantiles and recent events without stopping
//! anything, and [`CollectorHandle::stop`] joins the thread and returns
//! the whole [`Timeline`] for serialization (`--timeline-out`).
//!
//! Metric keys are qualified per registry: a metric already prefixed with
//! its registry's name (the repo convention — registry `dc0` holds
//! `dc0.batcher0.in`) keeps its name; anything else gets
//! `{registry}.{metric}` so two registries can never collide in the
//! unified view.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use super::journal::Event;
use super::window::{WindowSummary, WindowedCounter, WindowedGauge, WindowedHistogram};
use super::{Histogram, HistogramSnapshot, MetricsRegistry, Series};
use crate::notify::Notify;
use crate::shutdown::Shutdown;

/// Collector tuning. The defaults match the `obs` bench: 100 ms scrapes,
/// a ~6 s rolling window, and a timeline bounded at 4096 ticks.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Scrape interval.
    pub interval: Duration,
    /// Windows retained per metric (rolling-quantile depth).
    pub windows: usize,
    /// Timeline ticks retained; beyond this the oldest ticks are dropped
    /// (and counted in [`Timeline::dropped_ticks`]).
    pub timeline_cap: usize,
    /// Journal events retained in the timeline.
    pub event_cap: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            interval: Duration::from_millis(100),
            windows: super::window::DEFAULT_WINDOWS,
            timeline_cap: 4096,
            event_cap: 4096,
        }
    }
}

impl CollectorConfig {
    /// A config scraping every `interval` with the default retention.
    pub fn with_interval(interval: Duration) -> Self {
        CollectorConfig {
            interval,
            ..CollectorConfig::default()
        }
    }
}

/// Rolling quantiles of one histogram's latest windows, as stored per
/// timeline tick.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileSample {
    /// Samples in the window.
    pub count: u64,
    /// Median (upper bucket bound).
    pub p50: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
}

/// One scrape's worth of the unified timeline. Zero counter deltas and
/// empty histogram windows are omitted to keep serialized timelines
/// compact; readers treat a missing key as zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineTick {
    /// Microseconds since the collector started.
    pub elapsed_us: u64,
    /// Per-metric counter deltas over this tick (zeros omitted).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub counters: BTreeMap<String, u64>,
    /// Gauge values sampled at this tick.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub gauges: BTreeMap<String, i64>,
    /// Per-histogram quantiles of this tick's window (empty windows
    /// omitted).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub quantiles: BTreeMap<String, QuantileSample>,
}

/// The collector's serializable output: every tick plus every journal
/// event it drained, in scrape order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Scrape interval in microseconds.
    pub interval_us: u64,
    /// One entry per scrape, oldest first.
    pub ticks: Vec<TimelineTick>,
    /// Journal events drained across all registries, in drain order.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub events: Vec<Event>,
    /// Ticks dropped because the timeline hit its retention cap.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub dropped_ticks: u64,
}

fn is_zero(v: &u64) -> bool {
    *v == 0
}

impl Timeline {
    /// Reconstructs one counter's per-tick delta series (missing keys are
    /// the omitted zeros), compatible with the Fig. 9 plotting path.
    pub fn counter_series(&self, key: &str) -> Series {
        Series {
            name: key.to_string(),
            deltas: self
                .ticks
                .iter()
                .map(|t| t.counters.get(key).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// Every counter key appearing anywhere in the timeline, sorted.
    pub fn counter_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .ticks
            .iter()
            .flat_map(|t| t.counters.keys().cloned())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

/// A live, non-destructive view for dashboards: rolling rates, latest
/// gauges, rolling quantiles, and the newest journal events.
#[derive(Debug, Clone)]
pub struct LiveView {
    /// Time since the collector started.
    pub elapsed: Duration,
    /// Scrape interval.
    pub interval: Duration,
    /// Scrapes completed so far.
    pub ticks: u64,
    /// Per-counter rate (events/s) over the rolling window.
    pub rates: Vec<(String, f64)>,
    /// Latest sampled gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Rolling window summary per histogram.
    pub quantiles: Vec<(String, WindowSummary)>,
    /// Newest journal events across all registries, oldest first.
    pub events: Vec<Event>,
}

struct ScrapeState {
    counters: BTreeMap<String, WindowedCounter>,
    gauges: BTreeMap<String, WindowedGauge>,
    histograms: BTreeMap<String, WindowedHistogram>,
    /// Journal drain cursor per attached registry (same index).
    cursors: Vec<u64>,
    events: Vec<Event>,
    ticks: Vec<TimelineTick>,
    dropped_ticks: u64,
}

struct Shared {
    interval: Duration,
    windows: usize,
    timeline_cap: usize,
    event_cap: usize,
    epoch: Instant,
    registries: Mutex<Vec<MetricsRegistry>>,
    state: Mutex<ScrapeState>,
    ticks: AtomicU64,
    /// Cost of each scrape pass, µs (the collector's own overhead).
    scrape_cost: Histogram,
}

impl Shared {
    /// The unified key for `metric` of `registry`: unchanged when already
    /// scoped by the registry name, `{registry}.{metric}` otherwise.
    fn key(registry: &str, metric: &str) -> String {
        let scoped =
            metric.starts_with(registry) && metric.as_bytes().get(registry.len()) == Some(&b'.');
        if scoped || metric == registry {
            metric.to_string()
        } else {
            format!("{registry}.{metric}")
        }
    }

    fn scrape(&self) {
        let t0 = Instant::now();
        let registries = self.registries.lock().clone();
        let mut state = self.state.lock();
        state.cursors.resize(registries.len(), 0);

        let elapsed_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut tick = TimelineTick {
            elapsed_us,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            quantiles: BTreeMap::new(),
        };

        for (idx, reg) in registries.iter().enumerate() {
            let scope = reg.name().to_string();
            for (name, counter) in reg.counters() {
                let key = Self::key(&scope, &name);
                let windows = self.windows;
                let w = state
                    .counters
                    .entry(key.clone())
                    .or_insert_with(|| WindowedCounter::from_zero(counter, windows));
                let delta = w.tick();
                if delta > 0 {
                    tick.counters.insert(key, delta);
                }
            }
            for (name, gauge) in reg.gauges() {
                let key = Self::key(&scope, &name);
                let windows = self.windows;
                let w = state
                    .gauges
                    .entry(key.clone())
                    .or_insert_with(|| WindowedGauge::new(gauge, windows));
                tick.gauges.insert(key, w.tick());
            }
            for (name, histogram) in reg.histograms() {
                let key = Self::key(&scope, &name);
                let windows = self.windows;
                let w = state
                    .histograms
                    .entry(key.clone())
                    .or_insert_with(|| WindowedHistogram::from_zero(histogram, windows));
                let win = w.tick();
                if win.count() > 0 {
                    tick.quantiles.insert(
                        key,
                        QuantileSample {
                            count: win.count(),
                            p50: win.percentile(0.50),
                            p99: win.percentile(0.99),
                        },
                    );
                }
            }
            let fresh = reg.journal().since(state.cursors[idx]);
            if let Some(last) = fresh.last() {
                state.cursors[idx] = last.seq;
            }
            state.events.extend(fresh);
        }

        if state.events.len() > self.event_cap {
            let excess = state.events.len() - self.event_cap;
            state.events.drain(..excess);
        }
        state.ticks.push(tick);
        if state.ticks.len() > self.timeline_cap {
            state.ticks.remove(0);
            state.dropped_ticks += 1;
        }
        drop(state);

        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.scrape_cost.record_duration(t0.elapsed());
    }
}

/// Namespace for spawning the collector thread.
pub struct Collector;

impl Collector {
    /// Spawns the collector over `registries`, scraping per `config`.
    /// More registries can be attached later via
    /// [`CollectorHandle::attach`].
    pub fn spawn(registries: Vec<MetricsRegistry>, config: CollectorConfig) -> CollectorHandle {
        let shared = Arc::new(Shared {
            interval: config.interval,
            windows: config.windows.max(1),
            timeline_cap: config.timeline_cap.max(1),
            event_cap: config.event_cap,
            epoch: Instant::now(),
            registries: Mutex::new(registries),
            state: Mutex::new(ScrapeState {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                cursors: Vec::new(),
                events: Vec::new(),
                ticks: Vec::new(),
                dropped_ticks: 0,
            }),
            ticks: AtomicU64::new(0),
            scrape_cost: Histogram::new(),
        });
        let shutdown = Shutdown::new();
        let wakeup = Notify::new();

        let thread = {
            let shared = Arc::clone(&shared);
            let shutdown = shutdown.clone();
            let mut wakeup = wakeup.clone();
            std::thread::Builder::new()
                .name("telemetry-collector".into())
                .spawn(move || {
                    let interval = shared.interval;
                    let mut next = Instant::now() + interval;
                    loop {
                        while !shutdown.is_signaled() {
                            let now = Instant::now();
                            if now >= next {
                                break;
                            }
                            wakeup.wait_timeout(next - now);
                        }
                        if shutdown.is_signaled() {
                            // Final scrape: runs shorter than one interval
                            // still produce a tick, and the last partial
                            // window is captured.
                            shared.scrape();
                            return;
                        }
                        shared.scrape();
                        next += interval;
                        // Fell badly behind (debugger pause, CPU
                        // starvation): resync instead of scraping in a
                        // tight burst.
                        if Instant::now() > next + interval * 4 {
                            next = Instant::now() + interval;
                        }
                    }
                })
                .expect("spawn telemetry collector thread")
        };

        CollectorHandle {
            shared,
            shutdown,
            wakeup,
            thread: Some(thread),
        }
    }
}

/// Owner handle for a running collector. Dropping without
/// [`stop`](CollectorHandle::stop) detaches the thread only after
/// signalling it, so nothing lingers.
pub struct CollectorHandle {
    shared: Arc<Shared>,
    shutdown: Shutdown,
    wakeup: Notify,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for CollectorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CollectorHandle(interval={:?}, ticks={})",
            self.shared.interval,
            self.ticks()
        )
    }
}

impl CollectorHandle {
    /// Attaches another registry; it is scraped from the next tick on. A
    /// registry whose name is already attached is ignored (idempotent).
    pub fn attach(&self, registry: &MetricsRegistry) {
        let mut regs = self.shared.registries.lock();
        if regs.iter().any(|r| r.name() == registry.name()) {
            return;
        }
        regs.push(registry.clone());
    }

    /// Scrapes completed so far.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// The collector's own per-scrape cost (µs).
    pub fn scrape_cost(&self) -> HistogramSnapshot {
        self.shared.scrape_cost.snapshot()
    }

    /// A dashboard view: rates and quantiles over the newest
    /// `window_ticks` windows plus the newest `recent_events` events.
    pub fn live(&self, window_ticks: usize, recent_events: usize) -> LiveView {
        let state = self.shared.state.lock();
        let rates = state
            .counters
            .iter()
            .map(|(k, w)| (k.clone(), w.rate(window_ticks, self.shared.interval)))
            .collect();
        let gauges = state
            .gauges
            .iter()
            .map(|(k, w)| (k.clone(), w.latest()))
            .collect();
        let quantiles = state
            .histograms
            .iter()
            .map(|(k, w)| (k.clone(), w.rolling(window_ticks)))
            .collect();
        let events = state
            .events
            .iter()
            .skip(state.events.len().saturating_sub(recent_events))
            .cloned()
            .collect();
        LiveView {
            elapsed: self.shared.epoch.elapsed(),
            interval: self.shared.interval,
            ticks: self.ticks(),
            rates,
            gauges,
            quantiles,
            events,
        }
    }

    /// Signals the collector, joins it (one final scrape runs first), and
    /// returns the accumulated timeline.
    pub fn stop(mut self) -> Timeline {
        self.shutdown.signal();
        self.wakeup.notify();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("collector thread panicked");
        }
        let mut state = self.shared.state.lock();
        Timeline {
            interval_us: u64::try_from(self.shared.interval.as_micros()).unwrap_or(u64::MAX),
            ticks: std::mem::take(&mut state.ticks),
            events: std::mem::take(&mut state.events),
            dropped_ticks: state.dropped_ticks,
        }
    }
}

impl Drop for CollectorHandle {
    fn drop(&mut self) {
        self.shutdown.signal();
        self.wakeup.notify();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::journal::EventKind;

    #[test]
    fn collector_builds_a_timeline_and_stops_cleanly() {
        let reg = MetricsRegistry::new("dc0");
        let c = reg.counter("dc0.batcher0.in");
        let g = reg.gauge("dc0.batcher0.queue.depth");
        let h = reg.histogram("dc0.batcher.latency_us");
        let handle = Collector::spawn(
            vec![reg.clone()],
            CollectorConfig::with_interval(Duration::from_millis(5)),
        );
        for i in 0..20 {
            c.add(10);
            g.set(i);
            h.record(100 + i as u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        reg.journal().publish(
            "dc0.gc",
            None,
            EventKind::GcSweep {
                bound: 7,
                collected: 3,
            },
        );
        let timeline = handle.stop();
        assert!(!timeline.ticks.is_empty());
        let series = timeline.counter_series("dc0.batcher0.in");
        assert_eq!(series.deltas.iter().sum::<u64>(), 200, "deltas telescope");
        assert!(timeline
            .ticks
            .iter()
            .any(|t| t.gauges.contains_key("dc0.batcher0.queue.depth")));
        assert!(timeline
            .ticks
            .iter()
            .any(|t| t.quantiles.contains_key("dc0.batcher.latency_us")));
        assert_eq!(timeline.events.len(), 1, "journal drained into timeline");
        assert_eq!(timeline.counter_keys(), vec!["dc0.batcher0.in".to_string()]);
    }

    #[test]
    fn unscoped_metrics_get_registry_prefixed_keys() {
        let reg = MetricsRegistry::new("clients");
        reg.counter("issued").add(5);
        let handle = Collector::spawn(
            vec![reg],
            CollectorConfig::with_interval(Duration::from_millis(2)),
        );
        std::thread::sleep(Duration::from_millis(10));
        let timeline = handle.stop();
        assert!(
            timeline
                .counter_keys()
                .contains(&"clients.issued".to_string()),
            "keys: {:?}",
            timeline.counter_keys()
        );
    }

    #[test]
    fn attach_adds_registries_mid_run_and_live_reports_rates() {
        let a = MetricsRegistry::new("dc0");
        let ca = a.counter("dc0.x");
        let handle = Collector::spawn(
            vec![a.clone()],
            CollectorConfig::with_interval(Duration::from_millis(2)),
        );
        let b = MetricsRegistry::new("dc1");
        let cb = b.counter("dc1.y");
        handle.attach(&b);
        handle.attach(&b); // idempotent
        for _ in 0..10 {
            ca.add(1);
            cb.add(2);
            std::thread::sleep(Duration::from_millis(2));
        }
        let live = handle.live(16, 8);
        assert!(live.ticks > 0);
        assert!(live.rates.iter().any(|(k, _)| k == "dc1.y"));
        let timeline = handle.stop();
        assert_eq!(
            timeline.counter_series("dc1.y").deltas.iter().sum::<u64>(),
            20
        );
    }

    #[test]
    fn timeline_serializes_and_roundtrips() {
        let reg = MetricsRegistry::new("dc0");
        reg.counter("dc0.c").add(1);
        reg.histogram("dc0.h").record(50);
        let handle = Collector::spawn(
            vec![reg],
            CollectorConfig::with_interval(Duration::from_millis(2)),
        );
        std::thread::sleep(Duration::from_millis(8));
        let timeline = handle.stop();
        let json = serde_json::to_string(&timeline).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, timeline);
    }

    #[test]
    fn short_runs_still_capture_a_final_tick() {
        let reg = MetricsRegistry::new("dc0");
        reg.counter("dc0.c").add(9);
        let handle = Collector::spawn(
            vec![reg],
            CollectorConfig::with_interval(Duration::from_secs(3600)),
        );
        let timeline = handle.stop();
        assert_eq!(timeline.ticks.len(), 1, "stop forces a final scrape");
        assert_eq!(
            timeline.counter_series("dc0.c").deltas,
            vec![9],
            "the partial window is captured"
        );
    }
}
