//! Lock-free log-bucketed histograms with fixed percentiles.
//!
//! Values are bucketed into octaves of 8 sub-buckets each (values below 8
//! are exact), bounding the relative quantile error at 1/8 = 12.5% while
//! keeping the whole `u64` range in 496 buckets. Recording is a single
//! relaxed `fetch_add`; merging is an elementwise add, so merge is
//! commutative and associative by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the exact range (`msb` from `SUB_BITS` to 63).
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total bucket count covering all of `u64`.
pub(crate) const NUM_BUCKETS: usize = SUB + OCTAVES * SUB;

/// Bucket index for a value: exact below [`SUB`], then
/// `8 + octave*8 + sub` where `sub` is the 3 bits below the MSB.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + octave * SUB + sub
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `idx`.
pub(crate) fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        return (idx as u64, idx as u64);
    }
    let octave = ((idx - SUB) / SUB) as u32;
    let sub = ((idx - SUB) % SUB) as u64;
    let msb = octave + SUB_BITS;
    let width = 1u64 << (msb - SUB_BITS);
    let lower = (1u64 << msb) + sub * width;
    (lower, lower + (width - 1))
}

#[derive(Debug)]
struct Inner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A shared, lock-free histogram of `u64` samples (typically latencies in
/// microseconds). Clones share the same buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(Inner {
                buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let i = &self.inner;
        i.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.min.fetch_min(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as whole microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        let m = self.inner.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`): the upper bound of the bucket
    /// holding the ⌈q·count⌉-th smallest sample, so the estimate is never
    /// below the exact value and at most one bucket width above it.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (idx, b) in self.inner.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_bounds(idx).1.min(self.max());
            }
        }
        self.max()
    }

    /// A copy of the raw cumulative bucket counts (monotone non-decreasing
    /// per bucket), the substrate for windowed diffing: the elementwise
    /// difference of two copies is exactly the histogram of the samples
    /// recorded in between.
    pub(crate) fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Adds all of `other`'s buckets into `self` (elementwise, so merging
    /// is commutative and associative).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.inner.count.fetch_add(other.count(), Ordering::Relaxed);
        self.inner.sum.fetch_add(other.sum(), Ordering::Relaxed);
        if other.count() > 0 {
            self.inner
                .min
                .fetch_min(other.inner.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.inner.max.fetch_max(other.max(), Ordering::Relaxed);
        }
    }

    /// A point-in-time summary (count, sum, min/max, p50/p95/p99).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// Serializable summary of a [`Histogram`]. Units are whatever was
/// recorded (microseconds for the pipeline's latency histograms).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample (0 if empty).
    pub max: u64,
    /// Median (upper bucket bound; ≤ 12.5% above exact).
    pub p50: u64,
    /// 95th percentile (upper bucket bound).
    pub p95: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.percentile(1.0), 7);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p95: 0,
                p99: 0
            }
        );
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every bucket's bounds are consistent with bucket_index, and
        // consecutive buckets tile the range without gaps.
        let mut expected_lower = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lower, "bucket {idx} lower bound");
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            if hi == u64::MAX {
                assert_eq!(idx, NUM_BUCKETS - 1);
                return;
            }
            expected_lower = hi + 1;
        }
        panic!("buckets did not cover u64::MAX");
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let h = Histogram::new();
        h.record(100);
        h.record(200);
        let json = serde_json::to_string(&h.snapshot()).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h.snapshot());
        assert_eq!(back.count, 2);
    }

    /// Exact percentile of sorted samples: the ⌈q·n⌉-th smallest.
    fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #[test]
        fn percentiles_within_one_bucket_of_exact(
            values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
            q in 0.01f64..1.0,
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let exact = exact_percentile(&sorted, q);
            let est = h.percentile(q);
            // The estimate is the upper bound of the exact value's bucket
            // (clamped to the observed max): never below exact, and at
            // most one bucket width above.
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(est >= exact, "est {est} < exact {exact}");
            prop_assert!(
                est <= exact + (hi - lo),
                "est {est} more than a bucket above exact {exact} (bucket {lo}..={hi})"
            );
        }

        #[test]
        fn merge_is_associative_and_commutative(
            a in proptest::collection::vec(0u64..1_000_000, 0..100),
            b in proptest::collection::vec(0u64..1_000_000, 0..100),
            c in proptest::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let fill = |vals: &[u64]| {
                let h = Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            // (a ⊕ b) ⊕ c
            let left = fill(&a);
            left.merge_from(&fill(&b));
            left.merge_from(&fill(&c));
            // a ⊕ (b ⊕ c)
            let bc = fill(&b);
            bc.merge_from(&fill(&c));
            let right = fill(&a);
            right.merge_from(&bc);
            prop_assert_eq!(left.snapshot(), right.snapshot());
            // b ⊕ a == a ⊕ b
            let ab = fill(&a);
            ab.merge_from(&fill(&b));
            let ba = fill(&b);
            ba.merge_from(&fill(&a));
            prop_assert_eq!(ab.snapshot(), ba.snapshot());
        }
    }
}
