//! Precise pacing primitives: sleep-until with sub-millisecond accuracy and
//! an open-loop rate limiter for load generators.

use std::time::{Duration, Instant};

/// Sleeps until `deadline` with sub-millisecond accuracy.
///
/// OS sleeps are only accurate to roughly a millisecond; for the last stretch
/// this yields/spins so that paced workloads at tens of thousands of events
/// per second stay close to their target rate.
pub fn sleep_until(deadline: Instant) {
    const COARSE: Duration = Duration::from_millis(1);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > COARSE {
            std::thread::sleep(remaining - COARSE);
        } else {
            std::thread::yield_now();
        }
    }
}

/// An open-loop rate limiter: `pace(n)` blocks so that the long-run rate of
/// paced units never exceeds `rate` per second.
///
/// Load generators use this to emit records at a *target throughput* (the
/// x-axis of the paper's Fig. 7). The limiter is open-loop: it does not slow
/// down when downstream falls behind, so offered load can exceed service
/// capacity — exactly what the overload experiments need.
#[derive(Debug)]
pub struct RateLimiter {
    /// Seconds of virtual time consumed per unit.
    cost_per_unit: f64,
    /// The instant at which the limiter next permits a unit.
    next_free: Instant,
    /// Cap on accumulated burst credit, in seconds. Without a cap, a slow
    /// start would later permit an unbounded burst.
    max_credit: Duration,
}

impl RateLimiter {
    /// Creates a limiter permitting `rate` units per second.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive and finite, got {rate}"
        );
        RateLimiter {
            cost_per_unit: 1.0 / rate,
            next_free: Instant::now(),
            max_credit: Duration::from_millis(10),
        }
    }

    /// Blocks until `n` more units are permitted.
    pub fn pace(&mut self, n: u64) {
        let now = Instant::now();
        // Forfeit credit beyond the burst cap.
        if self.next_free + self.max_credit < now {
            self.next_free = now - self.max_credit;
        }
        let cost = Duration::from_secs_f64(self.cost_per_unit * n as f64);
        self.next_free += cost;
        if self.next_free > now {
            sleep_until(self.next_free);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_until_past_deadline_returns_immediately() {
        let start = Instant::now();
        sleep_until(start - Duration::from_millis(5));
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn sleep_until_is_accurate() {
        let deadline = Instant::now() + Duration::from_millis(5);
        sleep_until(deadline);
        let over = Instant::now().duration_since(deadline);
        assert!(over < Duration::from_millis(2), "overshoot {over:?}");
    }

    #[test]
    fn limiter_enforces_long_run_rate() {
        let mut lim = RateLimiter::new(10_000.0);
        let start = Instant::now();
        for _ in 0..20 {
            lim.pace(100); // 2000 units at 10k/s => 200 ms
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(180),
            "finished too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(400),
            "finished too slow: {elapsed:?}"
        );
    }

    #[test]
    fn limiter_burst_credit_is_capped() {
        let mut lim = RateLimiter::new(1000.0);
        std::thread::sleep(Duration::from_millis(50));
        // 50 ms idle at 1000/s would naively bank 50 units of credit; the
        // 10 ms cap allows at most ~10 free units, so pacing 100 units must
        // still take ≳ 85 ms.
        let start = Instant::now();
        lim.pace(100);
        assert!(start.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn limiter_rejects_zero_rate() {
        let _ = RateLimiter::new(0.0);
    }
}
