//! Edge-triggered wakeup signalling between pipeline stages.
//!
//! A [`Notify`] replaces fixed-interval polling loops with event-driven
//! ones: producers call [`notify`](Notify::notify) when new work exists
//! (a maintainer frontier advanced, an ATable row rose) and the consumer
//! blocks in [`wait_timeout`](Notify::wait_timeout) with its periodic
//! interval demoted to a heartbeat floor.
//!
//! Clones share the underlying signal but each clone keeps its **own**
//! consumption cursor, so several waiters can watch the same source and
//! every one of them observes every signal — the primitive is a broadcast
//! edge, not a semaphore. Signals coalesce: ten `notify` calls between two
//! waits wake the waiter once, which is exactly what a scan-the-world
//! consumer wants.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[derive(Debug, Default)]
struct Inner {
    seq: Mutex<u64>,
    cvar: Condvar,
}

/// A cloneable edge-triggered wakeup signal. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Notify {
    inner: Arc<Inner>,
    /// The last sequence number this handle has consumed. Cloning copies
    /// the cursor, so a fresh clone observes only signals after the clone.
    seen: u64,
}

impl Notify {
    /// A new signal with no pending wakeups.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals every current and future waiter. Never blocks beyond the
    /// internal lock; safe to call from hot paths.
    pub fn notify(&self) {
        let mut seq = self.inner.seq.lock().expect("notify lock");
        *seq = seq.wrapping_add(1);
        drop(seq);
        self.inner.cvar.notify_all();
    }

    /// Waits until a signal arrives or `timeout` elapses. Returns whether
    /// this handle was signalled (a signal that arrived *before* the call
    /// and has not been consumed by this handle counts, so wakeups are
    /// never lost to races).
    pub fn wait_timeout(&mut self, timeout: Duration) -> bool {
        let seen = self.seen;
        let seq = self.inner.seq.lock().expect("notify lock");
        let (seq, _) = self
            .inner
            .cvar
            .wait_timeout_while(seq, timeout, |s| *s == seen)
            .expect("notify wait");
        let signalled = *seq != seen;
        self.seen = *seq;
        signalled
    }

    /// Consumes a pending signal without blocking. Returns whether one was
    /// pending.
    pub fn try_consume(&mut self) -> bool {
        let seq = self.inner.seq.lock().expect("notify lock");
        let signalled = *seq != self.seen;
        self.seen = *seq;
        signalled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wait_times_out_without_signal() {
        let mut n = Notify::new();
        let t0 = Instant::now();
        assert!(!n.wait_timeout(Duration::from_millis(20)));
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn pending_signal_wakes_immediately() {
        let mut n = Notify::new();
        n.notify();
        let t0 = Instant::now();
        assert!(n.wait_timeout(Duration::from_secs(5)));
        assert!(t0.elapsed() < Duration::from_secs(1));
        // Consumed: the next wait blocks again.
        assert!(!n.wait_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn signals_coalesce() {
        let mut n = Notify::new();
        for _ in 0..10 {
            n.notify();
        }
        assert!(n.try_consume());
        assert!(!n.try_consume(), "ten signals consume as one");
    }

    #[test]
    fn cross_thread_wakeup() {
        let mut waiter = Notify::new();
        let notifier = waiter.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            notifier.notify();
        });
        let t0 = Instant::now();
        assert!(waiter.wait_timeout(Duration::from_secs(5)));
        assert!(t0.elapsed() < Duration::from_secs(1));
        t.join().unwrap();
    }

    #[test]
    fn every_clone_observes_every_signal() {
        let mut a = Notify::new();
        let mut b = a.clone();
        let notifier = a.clone();
        notifier.notify();
        assert!(a.try_consume());
        assert!(b.try_consume(), "broadcast, not a semaphore");
        assert!(!a.try_consume());
        assert!(!b.try_consume());
    }
}
