//! Cooperative shutdown signalling for simulated-machine worker threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable shutdown flag shared by a deployment's worker threads.
///
/// Workers poll [`is_signaled`](Shutdown::is_signaled) between batches;
/// the deployment owner calls [`signal`](Shutdown::signal) once and joins.
#[derive(Debug, Clone, Default)]
pub struct Shutdown {
    flag: Arc<AtomicBool>,
}

impl Shutdown {
    /// A fresh, un-signalled flag.
    pub fn new() -> Self {
        Shutdown::default()
    }

    /// Requests shutdown. Idempotent.
    pub fn signal(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    #[inline]
    pub fn is_signaled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_is_visible_to_clones() {
        let s = Shutdown::new();
        let c = s.clone();
        assert!(!c.is_signaled());
        s.signal();
        assert!(c.is_signaled());
        s.signal(); // idempotent
        assert!(s.is_signaled());
    }

    #[test]
    fn signal_crosses_threads() {
        let s = Shutdown::new();
        let c = s.clone();
        let h = std::thread::spawn(move || {
            while !c.is_signaled() {
                std::thread::yield_now();
            }
            true
        });
        s.signal();
        assert!(h.join().unwrap());
    }
}
