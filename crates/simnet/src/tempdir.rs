//! Collision-free scratch directories for tests.
//!
//! `std::env::temp_dir().join(format!("...-{}", std::process::id()))` is not
//! unique: every `#[test]` in one binary shares the process id, so two tests
//! using the same prefix — or one test re-run in-process — race on the same
//! path and corrupt each other's WAL files. [`TestDir`] adds a process-wide
//! atomic nonce to the name and removes the directory when dropped, so each
//! construction gets a fresh, private path and leaves nothing behind.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone per-process nonce distinguishing directories that share a
/// prefix and a process id.
static NONCE: AtomicU64 = AtomicU64::new(0);

/// A uniquely named scratch directory under [`std::env::temp_dir`] that is
/// deleted (recursively) on drop.
///
/// ```
/// let dir = chariots_simnet::TestDir::new("doc-example");
/// std::fs::write(dir.path().join("x"), b"hi").unwrap();
/// let path = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!path.exists());
/// ```
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Creates `temp_dir()/{prefix}-{pid}-{nonce}`, with the directory
    /// itself already created on disk.
    pub fn new(prefix: &str) -> Self {
        let nonce = NONCE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{nonce}", std::process::id()));
        // A leftover from a crashed previous process with the same pid is
        // stale by definition; clear it so the test starts clean.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create test dir");
        TestDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl AsRef<Path> for TestDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_prefix_yields_distinct_paths() {
        let a = TestDir::new("simnet-tempdir");
        let b = TestDir::new("simnet-tempdir");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        assert!(b.path().is_dir());
    }

    #[test]
    fn removed_on_drop() {
        let dir = TestDir::new("simnet-tempdir-drop");
        let path = dir.path().to_path_buf();
        std::fs::write(path.join("f"), b"x").unwrap();
        drop(dir);
        assert!(!path.exists());
    }
}
