//! Bounded retry with deterministic jittered exponential backoff.
//!
//! Clients of a replicated service see transient `Unavailable` errors during
//! failover windows; the right response is a small, *bounded* number of
//! retries with backoff — not an immediate error, and not an unbounded spin.
//! The jitter is derived from a seed (splitmix64), so simulated runs stay
//! reproducible without pulling in a RNG dependency on the hot path.

use std::time::Duration;

/// Backoff schedule for [`RetryPolicy::run`]: exponential growth from
/// `base_delay`, capped at `max_delay`, with multiplicative jitter in
/// `[1 - jitter, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1)`: each delay is scaled by a deterministic
    /// factor drawn from `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            jitter: 0.5,
            seed: 0x5EED_CAFE,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Starts from defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the total number of attempts (including the first).
    pub fn max_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one attempt is required");
        self.max_attempts = n;
        self
    }

    /// Sets the delay before the first retry.
    pub fn base_delay(mut self, d: Duration) -> Self {
        self.base_delay = d;
        self
    }

    /// Sets the cap on any single delay.
    pub fn max_delay(mut self, d: Duration) -> Self {
        self.max_delay = d;
        self
    }

    /// Sets the jitter fraction (`0.0` disables jitter).
    pub fn jitter(mut self, j: f64) -> Self {
        assert!((0.0..1.0).contains(&j));
        self.jitter = j;
        self
    }

    /// Sets the jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The delay to sleep after failed attempt number `attempt` (0-based).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        if self.jitter == 0.0 {
            return exp;
        }
        let h = splitmix64(self.seed ^ u64::from(attempt));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let factor = 1.0 - self.jitter * unit;
        exp.mul_f64(factor)
    }

    /// Runs `op` up to `max_attempts` times, sleeping the backoff delay
    /// between attempts. `op` receives the 0-based attempt number.
    /// An error for which `retryable` returns `false` aborts immediately;
    /// the error of the final attempt is returned as-is.
    pub fn run<T, E>(
        &self,
        mut retryable: impl FnMut(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt + 1 >= self.max_attempts || !retryable(&e) {
                        return Err(e);
                    }
                    std::thread::sleep(self.delay_for(attempt));
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try_without_sleeping() {
        let policy = RetryPolicy::new().base_delay(Duration::from_secs(10));
        let start = std::time::Instant::now();
        let out: Result<u32, ()> = policy.run(|_| true, |_| Ok(7));
        assert_eq!(out, Ok(7));
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn retries_until_success() {
        let policy = RetryPolicy::new()
            .max_attempts(5)
            .base_delay(Duration::from_micros(10));
        let mut calls = 0;
        let out: Result<&str, &str> = policy.run(
            |_| true,
            |attempt| {
                calls += 1;
                if attempt < 3 {
                    Err("transient")
                } else {
                    Ok("done")
                }
            },
        );
        assert_eq!(out, Ok("done"));
        assert_eq!(calls, 4);
    }

    #[test]
    fn exhausts_attempts_and_returns_last_error() {
        let policy = RetryPolicy::new()
            .max_attempts(3)
            .base_delay(Duration::from_micros(10));
        let mut calls = 0;
        let out: Result<(), u32> = policy.run(
            |_| true,
            |attempt| {
                calls += 1;
                Err(attempt)
            },
        );
        assert_eq!(out, Err(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn non_retryable_error_aborts_immediately() {
        let policy = RetryPolicy::new().max_attempts(10);
        let mut calls = 0;
        let out: Result<(), &str> = policy.run(
            |e| *e != "fatal",
            |_| {
                calls += 1;
                Err("fatal")
            },
        );
        assert_eq!(out, Err("fatal"));
        assert_eq!(calls, 1);
    }

    #[test]
    fn delays_grow_and_cap() {
        let policy = RetryPolicy::new()
            .base_delay(Duration::from_millis(2))
            .max_delay(Duration::from_millis(16))
            .jitter(0.0);
        assert_eq!(policy.delay_for(0), Duration::from_millis(2));
        assert_eq!(policy.delay_for(1), Duration::from_millis(4));
        assert_eq!(policy.delay_for(3), Duration::from_millis(16));
        assert_eq!(policy.delay_for(30), Duration::from_millis(16));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::new()
            .base_delay(Duration::from_millis(8))
            .max_delay(Duration::from_millis(8))
            .jitter(0.5)
            .seed(42);
        let a = policy.delay_for(0);
        let b = policy.delay_for(0);
        assert_eq!(a, b, "same seed and attempt must jitter identically");
        assert!(a <= Duration::from_millis(8));
        assert!(a >= Duration::from_millis(4));
        let other = policy.clone().seed(43).delay_for(0);
        assert_ne!(a, other, "different seeds should (generically) differ");
    }
}
