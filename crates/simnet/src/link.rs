//! Simulated network links: latency, jitter, bandwidth, partitions,
//! duplication, and drops.
//!
//! A [`Link`] connects two simulated machines (or two datacenters, for WAN
//! links). Messages sent into the link are delivered on the receiving end
//! after the configured latency; a background forwarder thread owns the
//! delay queue. The [`LinkHandle`] injects faults at runtime: partitions
//! (messages silently dropped, as they would time out under a real
//! partition), probabilistic drops, and probabilistic duplication — the
//! latter exercises the filters stage's exactly-once guarantee (§6.2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Static configuration of a link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: Duration,
    /// Uniform random extra delay in `[0, jitter]`; jitter also induces
    /// reordering between messages sent close together.
    pub jitter: Duration,
    /// Payload bytes per second the link can carry; `None` means unlimited.
    /// Transmission time queues serially, modelling a NIC.
    pub bandwidth: Option<f64>,
    /// Probability in `[0, 1]` that a message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// RNG seed for jitter/duplication/drops (deterministic tests).
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            bandwidth: None,
            duplicate_prob: 0.0,
            drop_prob: 0.0,
            seed: 0,
        }
    }
}

impl LinkConfig {
    /// A link with only a fixed one-way latency.
    pub fn with_latency(latency: Duration) -> Self {
        LinkConfig {
            latency,
            ..LinkConfig::default()
        }
    }

    /// A typical WAN link for the multi-datacenter experiments: 40 ms
    /// one-way, 5 ms jitter.
    pub fn wan() -> Self {
        LinkConfig {
            latency: Duration::from_millis(40),
            jitter: Duration::from_millis(5),
            ..LinkConfig::default()
        }
    }

    /// Sets the jitter bound.
    pub fn jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the bandwidth in bytes/second.
    pub fn bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Sets the duplication probability.
    pub fn duplicate_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.duplicate_prob = p;
        self
    }

    /// Sets the drop probability.
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.drop_prob = p;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Runtime fault-injection and observation handle for a link.
#[derive(Debug, Clone)]
pub struct LinkHandle {
    shared: Arc<LinkShared>,
}

#[derive(Debug)]
struct LinkShared {
    partitioned: AtomicBool,
    latency_micros: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    dup_per_million: AtomicU32,
    drop_per_million: AtomicU32,
}

impl LinkHandle {
    /// Cuts the link: messages sent while partitioned are dropped, like
    /// traffic during a real network partition.
    pub fn partition(&self) {
        self.shared.partitioned.store(true, Ordering::Release);
    }

    /// Heals the partition.
    pub fn heal(&self) {
        self.shared.partitioned.store(false, Ordering::Release);
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned.load(Ordering::Acquire)
    }

    /// Changes the one-way latency at runtime.
    pub fn set_latency(&self, latency: Duration) {
        self.shared
            .latency_micros
            .store(latency.as_micros() as u64, Ordering::Release);
    }

    /// Changes the duplication probability at runtime.
    pub fn set_duplicate_prob(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.shared
            .dup_per_million
            .store((p * 1e6) as u32, Ordering::Release);
    }

    /// Changes the drop probability at runtime.
    pub fn set_drop_prob(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.shared
            .drop_per_million
            .store((p * 1e6) as u32, Ordering::Release);
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.shared.delivered.load(Ordering::Relaxed)
    }

    /// Messages dropped so far (partition + probabilistic drops).
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Messages duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.shared.duplicated.load(Ordering::Relaxed)
    }
}

/// Sending endpoint of a link.
#[derive(Debug, Clone)]
pub struct LinkSender<T> {
    ingress: Sender<T>,
    shared: Arc<LinkShared>,
}

impl<T> LinkSender<T> {
    /// Sends a message into the link. Returns `false` if the receiving end
    /// (and forwarder) has shut down.
    pub fn send(&self, msg: T) -> bool {
        // Partition check happens on the sending side so that messages sent
        // during a partition never arrive, even if it heals a moment later.
        if self.shared.partitioned.load(Ordering::Acquire) {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return true; // the *link* is up; the message is just lost
        }
        self.ingress.send(msg).is_ok()
    }
}

struct Scheduled<T> {
    due: Instant,
    seq: u64,
    msg: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// A simulated unidirectional link. Construct with [`Link::spawn`] (sized
/// messages, bandwidth modelling) or [`Link::spawn_simple`].
pub struct Link;

impl Link {
    /// Spawns a link whose bandwidth model uses `size_of` to weigh
    /// messages. Returns the sending endpoint, the delivery receiver, and
    /// the fault-injection handle.
    pub fn spawn<T, F>(cfg: LinkConfig, size_of: F) -> (LinkSender<T>, Receiver<T>, LinkHandle)
    where
        T: Send + Clone + 'static,
        F: Fn(&T) -> usize + Send + 'static,
    {
        let shared = Arc::new(LinkShared {
            partitioned: AtomicBool::new(false),
            latency_micros: AtomicU64::new(cfg.latency.as_micros() as u64),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            dup_per_million: AtomicU32::new((cfg.duplicate_prob * 1e6) as u32),
            drop_per_million: AtomicU32::new((cfg.drop_prob * 1e6) as u32),
        });
        let (ingress_tx, ingress_rx) = channel::unbounded::<T>();
        let (egress_tx, egress_rx) = channel::unbounded::<T>();
        let fwd_shared = Arc::clone(&shared);
        let jitter = cfg.jitter;
        let bandwidth = cfg.bandwidth;
        let seed = cfg.seed;
        std::thread::Builder::new()
            .name("simnet-link".into())
            .spawn(move || {
                forwarder(
                    ingress_rx, egress_tx, fwd_shared, jitter, bandwidth, seed, size_of,
                )
            })
            .expect("spawn link forwarder");
        (
            LinkSender {
                ingress: ingress_tx,
                shared: Arc::clone(&shared),
            },
            egress_rx,
            LinkHandle { shared },
        )
    }

    /// Spawns a link that ignores message sizes (no bandwidth model).
    pub fn spawn_simple<T>(cfg: LinkConfig) -> (LinkSender<T>, Receiver<T>, LinkHandle)
    where
        T: Send + Clone + 'static,
    {
        Self::spawn(cfg, |_| 0)
    }
}

#[allow(clippy::too_many_arguments)]
fn forwarder<T, F>(
    ingress: Receiver<T>,
    egress: Sender<T>,
    shared: Arc<LinkShared>,
    jitter: Duration,
    bandwidth: Option<f64>,
    seed: u64,
    size_of: F,
) where
    T: Send + Clone + 'static,
    F: Fn(&T) -> usize,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut heap: BinaryHeap<Reverse<Scheduled<T>>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    // The instant the simulated NIC finishes its current transmissions.
    let mut tx_free = Instant::now();
    let mut ingress_open = true;

    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(s)| s.due <= now) {
            let Reverse(s) = heap.pop().expect("peeked");
            shared.delivered.fetch_add(1, Ordering::Relaxed);
            if egress.send(s.msg).is_err() {
                return; // receiver gone
            }
        }
        if !ingress_open && heap.is_empty() {
            return; // fully drained after sender hung up
        }

        // Wait for the next arrival or the next due delivery.
        let msg = if let Some(Reverse(next)) = heap.peek() {
            let timeout = next.due.saturating_duration_since(Instant::now());
            if !ingress_open {
                crate::pacing::sleep_until(next.due);
                continue;
            }
            match ingress.recv_timeout(timeout) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    ingress_open = false;
                    continue;
                }
            }
        } else {
            match ingress.recv() {
                Ok(m) => m,
                Err(_) => return, // nothing queued and sender gone
            }
        };

        // Probabilistic drop.
        let drop_p = shared.drop_per_million.load(Ordering::Acquire);
        if drop_p > 0 && rng.gen_range(0u32..1_000_000) < drop_p {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }

        // Schedule delivery: serial transmission time + propagation + jitter.
        let now = Instant::now();
        if tx_free < now {
            tx_free = now;
        }
        if let Some(bw) = bandwidth {
            let size = size_of(&msg);
            tx_free += Duration::from_secs_f64(size as f64 / bw);
        }
        let latency = Duration::from_micros(shared.latency_micros.load(Ordering::Acquire));
        let jit = if jitter.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(rng.gen_range(0.0..jitter.as_secs_f64()))
        };
        let due = tx_free + latency + jit;

        // Probabilistic duplication: the copy gets fresh jitter, so the two
        // deliveries may arrive in either order.
        let dup_p = shared.dup_per_million.load(Ordering::Acquire);
        if dup_p > 0 && rng.gen_range(0u32..1_000_000) < dup_p {
            shared.duplicated.fetch_add(1, Ordering::Relaxed);
            let extra_jit = if jitter.is_zero() {
                Duration::ZERO
            } else {
                Duration::from_secs_f64(rng.gen_range(0.0..jitter.as_secs_f64()))
            };
            heap.push(Reverse(Scheduled {
                due: tx_free + latency + extra_jit,
                seq,
                msg: msg.clone(),
            }));
            seq += 1;
        }
        heap.push(Reverse(Scheduled { due, seq, msg }));
        seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_link_delivers_in_order() {
        let (tx, rx, _h) = Link::spawn_simple::<u32>(LinkConfig::default());
        for i in 0..100 {
            assert!(tx.send(i));
        }
        let got: Vec<u32> = (0..100)
            .map(|_| rx.recv_timeout(Duration::from_secs(1)).unwrap())
            .collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = LinkConfig::with_latency(Duration::from_millis(30));
        let (tx, rx, _h) = Link::spawn_simple::<u8>(cfg);
        let start = Instant::now();
        tx.send(1);
        rx.recv_timeout(Duration::from_secs(1)).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(28), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(200), "{elapsed:?}");
    }

    #[test]
    fn partition_drops_messages_and_heals() {
        let (tx, rx, h) = Link::spawn_simple::<u32>(LinkConfig::default());
        h.partition();
        assert!(h.is_partitioned());
        tx.send(1);
        tx.send(2);
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(h.dropped(), 2);
        h.heal();
        tx.send(3);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 3);
        assert_eq!(h.delivered(), 1);
    }

    #[test]
    fn duplication_delivers_copies() {
        let cfg = LinkConfig::default().duplicate_prob(1.0).seed(7);
        let (tx, rx, h) = Link::spawn_simple::<u32>(cfg);
        tx.send(42);
        let a = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((a, b), (42, 42));
        assert_eq!(h.duplicated(), 1);
    }

    #[test]
    fn drops_are_probabilistic_and_counted() {
        let cfg = LinkConfig::default().drop_prob(1.0).seed(3);
        let (tx, rx, h) = Link::spawn_simple::<u32>(cfg);
        for i in 0..10 {
            tx.send(i);
        }
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(h.dropped(), 10);
    }

    #[test]
    fn bandwidth_paces_transmission() {
        // 10 messages × 1000 bytes at 100 kB/s = 100 ms of transmission.
        let cfg = LinkConfig::default().bandwidth(100_000.0);
        let (tx, rx, _h) = Link::spawn::<Vec<u8>, _>(cfg, |m| m.len());
        let start = Instant::now();
        for _ in 0..10 {
            tx.send(vec![0u8; 1000]);
        }
        for _ in 0..10 {
            rx.recv_timeout(Duration::from_secs(2)).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(85), "{elapsed:?}");
    }

    #[test]
    fn jitter_reorders_but_loses_nothing() {
        let cfg = LinkConfig::with_latency(Duration::from_millis(1))
            .jitter(Duration::from_millis(10))
            .seed(11);
        let (tx, rx, _h) = Link::spawn_simple::<u32>(cfg);
        for i in 0..50 {
            tx.send(i);
        }
        let mut got: Vec<u32> = (0..50)
            .map(|_| rx.recv_timeout(Duration::from_secs(1)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn latency_change_applies_to_new_messages() {
        let cfg = LinkConfig::with_latency(Duration::from_millis(100));
        let (tx, rx, h) = Link::spawn_simple::<u32>(cfg);
        h.set_latency(Duration::ZERO);
        let start = Instant::now();
        tx.send(5);
        rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn link_drains_after_sender_drops() {
        let cfg = LinkConfig::with_latency(Duration::from_millis(20));
        let (tx, rx, _h) = Link::spawn_simple::<u32>(cfg);
        tx.send(1);
        tx.send(2);
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    }
}
