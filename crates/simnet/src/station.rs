//! Service stations: the capacity model for simulated machines.
//!
//! The paper evaluates Chariots on real clusters (Xeon nodes on a 10 GbE
//! rack, and AWS c3.large instances). This reproduction replaces the
//! hardware with **service stations**: each simulated machine's worker
//! thread paces its work through a station with a configurable service rate.
//! The station also models the overload behaviour visible in the paper's
//! Fig. 7 — a machine pushed past its capacity *loses* throughput (the paper
//! measures a peak of ≈150 K appends/s that degrades to ≈120 K under
//! overload) — by degrading the effective service rate as its input backlog
//! grows.
//!
//! Producers feeding a station call [`ServiceStation::note_arrival`] (cheap,
//! non-blocking); the machine's worker thread calls
//! [`ServiceStation::serve`], which blocks long enough to keep the long-run
//! service rate at or below the (possibly degraded) capacity.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use chariots_types::{ChariotsError, Result};
use parking_lot::Mutex;

use crate::pacing::sleep_until;

/// Capacity model of one simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct StationConfig {
    /// Nominal service rate in records per second. `f64::INFINITY` means
    /// uncapped (useful in correctness tests, where wall-clock pacing is
    /// noise).
    pub rate: f64,
    /// Fraction of the nominal rate lost at full overload. The paper's
    /// Fig. 7 shows ≈20 % degradation (150 K peak → ≈120 K plateau).
    pub overload_degradation: f64,
    /// Backlog (pending records) at which degradation starts.
    pub overload_onset: u64,
    /// Backlog at which degradation reaches `overload_degradation`;
    /// in between, degradation ramps linearly.
    pub overload_full: u64,
}

impl Default for StationConfig {
    fn default() -> Self {
        StationConfig {
            rate: f64::INFINITY,
            overload_degradation: 0.2,
            overload_onset: 2_000,
            overload_full: 20_000,
        }
    }
}

impl StationConfig {
    /// An uncapped station (for correctness tests).
    pub fn uncapped() -> Self {
        StationConfig::default()
    }

    /// A station with the given nominal rate and default overload model.
    pub fn with_rate(rate: f64) -> Self {
        StationConfig {
            rate,
            ..StationConfig::default()
        }
    }

    /// Sets the overload model parameters.
    pub fn overload(mut self, degradation: f64, onset: u64, full: u64) -> Self {
        assert!((0.0..1.0).contains(&degradation));
        assert!(full >= onset);
        self.overload_degradation = degradation;
        self.overload_onset = onset;
        self.overload_full = full;
        self
    }
}

/// A simulated machine's service capacity. See the module docs.
#[derive(Debug)]
pub struct ServiceStation {
    name: String,
    cfg: StationConfig,
    /// Records noted as arrived but not yet served; the overload signal.
    pending: AtomicI64,
    /// Total records served (the per-machine throughput counter the bench
    /// harness reads).
    served: AtomicU64,
    crashed: AtomicBool,
    /// The instant at which the station is next free; pacing state.
    next_free: Mutex<Instant>,
}

impl ServiceStation {
    /// Creates a station.
    pub fn new(name: impl Into<String>, cfg: StationConfig) -> Self {
        ServiceStation {
            name: name.into(),
            cfg,
            pending: AtomicI64::new(0),
            served: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            next_free: Mutex::new(Instant::now()),
        }
    }

    /// The station's name (diagnostics and bench output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Notes that `n` records arrived at this machine's input queue.
    /// Producers call this; it never blocks.
    #[inline]
    pub fn note_arrival(&self, n: u64) {
        self.pending.fetch_add(n as i64, Ordering::Relaxed);
    }

    /// Serves `n` records: blocks the calling worker thread so the long-run
    /// service rate respects the (possibly degraded) capacity, then counts
    /// the records as served.
    ///
    /// Returns [`ChariotsError::Unavailable`] while the machine is crashed.
    pub fn serve(&self, n: u64) -> Result<()> {
        if self.crashed.load(Ordering::Acquire) {
            return Err(ChariotsError::Unavailable(self.name.clone()));
        }
        if n == 0 {
            return Ok(());
        }
        if self.cfg.rate.is_finite() {
            let eff = self.effective_rate();
            let cost = Duration::from_secs_f64(n as f64 / eff);
            let deadline = {
                let mut next_free = self.next_free.lock();
                let now = Instant::now();
                // A station does not bank idle time: capacity not used is
                // lost, like a real CPU.
                if *next_free < now {
                    *next_free = now;
                }
                *next_free += cost;
                *next_free
            };
            sleep_until(deadline);
        }
        self.pending.fetch_sub(n as i64, Ordering::Relaxed);
        self.served.fetch_add(n, Ordering::Relaxed);
        Ok(())
    }

    /// The effective service rate given the current backlog.
    pub fn effective_rate(&self) -> f64 {
        let pending = self.pending.load(Ordering::Relaxed).max(0) as u64;
        let d = &self.cfg;
        let degradation = if pending <= d.overload_onset {
            0.0
        } else if pending >= d.overload_full {
            d.overload_degradation
        } else {
            let span = (d.overload_full - d.overload_onset) as f64;
            d.overload_degradation * (pending - d.overload_onset) as f64 / span
        };
        self.cfg.rate * (1.0 - degradation)
    }

    /// Current input backlog in records (clamped at zero: consumers that
    /// never call [`note_arrival`](Self::note_arrival) drive it negative).
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Relaxed).max(0) as u64
    }

    /// Total records served since creation.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Simulates a machine crash: subsequent [`serve`](Self::serve) calls
    /// fail until [`recover`](Self::recover).
    pub fn crash(&self) {
        self.crashed.store(true, Ordering::Release);
    }

    /// Brings a crashed machine back.
    pub fn recover(&self) {
        self.crashed.store(false, Ordering::Release);
        *self.next_free.lock() = Instant::now();
    }

    /// Whether the machine is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_station_never_blocks() {
        let s = ServiceStation::new("m", StationConfig::uncapped());
        let start = Instant::now();
        for _ in 0..1000 {
            s.serve(1000).unwrap();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(s.served(), 1_000_000);
    }

    #[test]
    fn capped_station_enforces_rate() {
        let s = ServiceStation::new("m", StationConfig::with_rate(50_000.0));
        let start = Instant::now();
        // 10_000 records at 50k/s = 200 ms.
        for _ in 0..100 {
            s.serve(100).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(180), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(400), "{elapsed:?}");
    }

    #[test]
    fn idle_capacity_is_not_banked() {
        let s = ServiceStation::new("m", StationConfig::with_rate(1_000.0));
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        s.serve(100).unwrap(); // must still take ~100 ms
        assert!(start.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn overload_degrades_effective_rate() {
        let cfg = StationConfig::with_rate(10_000.0).overload(0.2, 100, 1_000);
        let s = ServiceStation::new("m", cfg);
        assert_eq!(s.effective_rate(), 10_000.0);
        s.note_arrival(100);
        assert_eq!(s.effective_rate(), 10_000.0, "onset is inclusive");
        s.note_arrival(450); // pending 550: halfway up the ramp
        let eff = s.effective_rate();
        assert!((eff - 9_000.0).abs() < 1.0, "expected ~9000, got {eff}");
        s.note_arrival(10_000); // far past full
        assert_eq!(s.effective_rate(), 8_000.0);
    }

    #[test]
    fn serving_reduces_pending() {
        let s = ServiceStation::new("m", StationConfig::uncapped());
        s.note_arrival(50);
        assert_eq!(s.pending(), 50);
        s.serve(20).unwrap();
        assert_eq!(s.pending(), 30);
        s.serve(40).unwrap(); // over-serving clamps at zero
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn crash_and_recover() {
        let s = ServiceStation::new("m", StationConfig::uncapped());
        s.crash();
        assert!(s.is_crashed());
        assert!(matches!(
            s.serve(1),
            Err(ChariotsError::Unavailable(name)) if name == "m"
        ));
        s.recover();
        assert!(s.serve(1).is_ok());
        assert_eq!(s.served(), 1);
    }

    #[test]
    fn concurrent_servers_share_capacity() {
        use std::sync::Arc;
        let s = Arc::new(ServiceStation::new("m", StationConfig::with_rate(50_000.0)));
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        s.serve(100).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 threads × 2500 records = 10_000 records at a *shared* 50 k/s:
        // must take ≥ ~200 ms even with 4 callers.
        assert!(start.elapsed() >= Duration::from_millis(180));
        assert_eq!(s.served(), 10_000);
    }
}
