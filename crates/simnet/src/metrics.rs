//! Lightweight metrics: shared counters, throughput meters, and the
//! time-series sampler behind the paper's Fig. 9.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheap shared counter (relaxed atomics; readers tolerate slight skew).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Measures average throughput of a [`Counter`] over a wall-clock window.
#[derive(Debug)]
pub struct ThroughputMeter {
    counter: Counter,
    started: Instant,
    start_value: u64,
}

impl ThroughputMeter {
    /// Starts measuring `counter` from its current value.
    pub fn start(counter: Counter) -> Self {
        let start_value = counter.get();
        ThroughputMeter {
            counter,
            started: Instant::now(),
            start_value,
        }
    }

    /// Units counted since the meter started.
    pub fn count(&self) -> u64 {
        self.counter.get() - self.start_value
    }

    /// Average rate (units/second) since the meter started.
    pub fn rate(&self) -> f64 {
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed == 0.0 {
            0.0
        } else {
            self.count() as f64 / elapsed
        }
    }

    /// Elapsed time since the meter started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// One named series of per-interval counts (for Fig. 9-style plots).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display name of the machine/stage being sampled.
    pub name: String,
    /// Records per interval, one entry per sample tick.
    pub deltas: Vec<u64>,
}

impl Series {
    /// Converts per-interval deltas into rates (units/second).
    pub fn rates(&self, interval: Duration) -> Vec<f64> {
        let secs = interval.as_secs_f64();
        self.deltas.iter().map(|&d| d as f64 / secs).collect()
    }
}

/// A sampled multi-series time series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Sampling interval.
    pub interval: Duration,
    /// One series per sampled counter.
    pub series: Vec<Series>,
}

/// Samples a set of named counters every `interval` until `stop` returns
/// true, producing per-interval deltas. Runs inline on the calling thread
/// (spawn one if concurrency is needed).
pub fn sample_until(
    counters: &[(String, Counter)],
    interval: Duration,
    mut stop: impl FnMut() -> bool,
) -> TimeSeries {
    let mut last: Vec<u64> = counters.iter().map(|(_, c)| c.get()).collect();
    let mut series: Vec<Series> = counters
        .iter()
        .map(|(name, _)| Series {
            name: name.clone(),
            deltas: Vec::new(),
        })
        .collect();
    let mut next_tick = Instant::now() + interval;
    while !stop() {
        crate::pacing::sleep_until(next_tick);
        next_tick += interval;
        for (i, (_, c)) in counters.iter().enumerate() {
            let now = c.get();
            series[i].deltas.push(now - last[i]);
            last[i] = now;
        }
    }
    TimeSeries { interval, series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        let c2 = c.clone(); // clones share the value
        c2.add(1);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn meter_measures_rate() {
        let c = Counter::new();
        c.add(100); // before the meter starts: excluded
        let meter = ThroughputMeter::start(c.clone());
        c.add(500);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(meter.count(), 500);
        let rate = meter.rate();
        assert!(rate > 0.0 && rate <= 500.0 / 0.05, "rate {rate}");
    }

    #[test]
    fn sampler_collects_deltas() {
        let c = Counter::new();
        let counters = vec![("stage".to_string(), c.clone())];
        let producer = {
            let c = c.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    c.add(10);
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let ticks = std::cell::Cell::new(0);
        let ts = sample_until(&counters, Duration::from_millis(20), || {
            ticks.set(ticks.get() + 1);
            ticks.get() > 4
        });
        producer.join().unwrap();
        assert_eq!(ts.series.len(), 1);
        assert_eq!(ts.series[0].name, "stage");
        let total: u64 = ts.series[0].deltas.iter().sum();
        assert!(total <= 100);
        assert!(!ts.series[0].deltas.is_empty());
    }

    #[test]
    fn series_rates_divide_by_interval() {
        let s = Series {
            name: "x".into(),
            deltas: vec![50, 100],
        };
        assert_eq!(s.rates(Duration::from_millis(500)), vec![100.0, 200.0]);
    }
}
