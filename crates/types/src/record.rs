//! Log records and their application-visible tags.
//!
//! A record's **body** is opaque to Chariots; **tags** are key/value pairs
//! the system can see and index (§3, §5.3). The record also carries the
//! meta-information the paper lists: its host datacenter and `TOId`
//! (combined in [`RecordId`]), and — once persisted at a datacenter — the
//! `LId` of that copy.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::causality::VersionVector;
use crate::ids::{DatacenterId, LId, RecordId, TOId, TraceId};

/// The value attached to a tag, if any.
///
/// Values participate in indexer lookup predicates (§5.3): "look up records
/// with a certain tag with values greater than *i*".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TagValue {
    /// An integer value, comparable in lookup rules.
    Int(i64),
    /// A string value, comparable lexicographically.
    Str(String),
}

impl fmt::Display for TagValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagValue::Int(i) => write!(f, "{i}"),
            TagValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for TagValue {
    fn from(v: i64) -> Self {
        TagValue::Int(v)
    }
}

impl From<&str> for TagValue {
    fn from(v: &str) -> Self {
        TagValue::Str(v.to_owned())
    }
}

impl From<String> for TagValue {
    fn from(v: String) -> Self {
        TagValue::Str(v)
    }
}

/// One tag: a key naming a feature of the record, optionally with a value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tag {
    /// The tag's name; indexers shard and look up by this key.
    pub key: String,
    /// Optional value used by value predicates in lookups.
    pub value: Option<TagValue>,
}

impl Tag {
    /// A bare tag with no value.
    pub fn key(key: impl Into<String>) -> Self {
        Tag {
            key: key.into(),
            value: None,
        }
    }

    /// A tag with a value.
    pub fn with_value(key: impl Into<String>, value: impl Into<TagValue>) -> Self {
        Tag {
            key: key.into(),
            value: Some(value.into()),
        }
    }
}

/// The set of tags attached to one record ("each record might have more than
/// one tag", §5.3). Small-vector semantics: records typically carry 0–4 tags.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagSet {
    tags: Vec<Tag>,
}

impl TagSet {
    /// An empty tag set.
    pub fn new() -> Self {
        TagSet::default()
    }

    /// Builds a tag set from tags.
    pub fn from_tags(tags: Vec<Tag>) -> Self {
        TagSet { tags }
    }

    /// Adds a tag (builder style).
    pub fn with(mut self, tag: Tag) -> Self {
        self.tags.push(tag);
        self
    }

    /// Adds a tag in place.
    pub fn push(&mut self, tag: Tag) {
        self.tags.push(tag);
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the record carries no tags.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Iterates the tags.
    pub fn iter(&self) -> impl Iterator<Item = &Tag> {
        self.tags.iter()
    }

    /// First tag with the given key, if any.
    pub fn get(&self, key: &str) -> Option<&Tag> {
        self.tags.iter().find(|t| t.key == key)
    }

    /// Whether any tag has the given key.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

impl FromIterator<Tag> for TagSet {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        TagSet {
            tags: iter.into_iter().collect(),
        }
    }
}

/// A record as created by an application client, before it is assigned a
/// position in any datacenter's log.
///
/// Contains everything the abstract solution's *Append* event attaches
/// (§6.1): host identifier and `TOId` (in [`RecordId`]), causality
/// information ([`VersionVector`]), tags, and the opaque body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Record {
    /// Host datacenter + total-order id: the record's global identity.
    pub id: RecordId,
    /// The causal cut the host datacenter had applied when this record was
    /// appended: every record covered by `deps` must precede this record in
    /// every replica's log.
    pub deps: VersionVector,
    /// System-visible tags used for indexing.
    pub tags: TagSet,
    /// Application payload, opaque to Chariots.
    pub body: Bytes,
    /// Observability: set on a sampled subset of records so the pipeline
    /// stages can stamp per-stage enter/exit times. Not part of the
    /// record's identity (excluded from equality) and not persisted or
    /// sent on the wire.
    #[serde(skip)]
    pub trace: Option<TraceId>,
}

// Trace ids are diagnostic metadata: two copies of a record are the same
// record whether or not either copy happens to be sampled.
impl PartialEq for Record {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.deps == other.deps
            && self.tags == other.tags
            && self.body == other.body
    }
}

impl Record {
    /// Creates a record (untraced; see [`Record::with_trace`]).
    pub fn new(id: RecordId, deps: VersionVector, tags: TagSet, body: Bytes) -> Self {
        Record {
            id,
            deps,
            tags,
            body,
            trace: None,
        }
    }

    /// Replaces the record's trace id (builder style).
    pub fn with_trace(mut self, trace: Option<TraceId>) -> Self {
        self.trace = trace;
        self
    }

    /// Host datacenter of the record.
    #[inline]
    pub fn host(&self) -> DatacenterId {
        self.id.host
    }

    /// Total-order id of the record.
    #[inline]
    pub fn toid(&self) -> TOId {
        self.id.toid
    }

    /// Approximate wire size in bytes (body + tags + fixed metadata); used
    /// by the simulated network to model bandwidth.
    pub fn wire_size(&self) -> usize {
        const FIXED: usize = 8 /* id */ + 8 /* lid slot */;
        let tags: usize = self
            .tags
            .iter()
            .map(|t| {
                t.key.len()
                    + match &t.value {
                        Some(TagValue::Int(_)) => 8,
                        Some(TagValue::Str(s)) => s.len(),
                        None => 0,
                    }
            })
            .sum();
        FIXED + self.deps.len() * 8 + tags + self.body.len()
    }
}

/// A record copy persisted in one datacenter's log: the record plus the
/// `LId` of this copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// Position of this copy in the local shared log.
    pub lid: LId,
    /// The record itself.
    pub record: Record,
}

impl Entry {
    /// Creates an entry.
    pub fn new(lid: LId, record: Record) -> Self {
        Entry { lid, record }
    }

    /// The record's global identity.
    #[inline]
    pub fn id(&self) -> RecordId {
        self.record.id
    }
}

/// Builder for records, used by application-client libraries.
///
/// The client library fills in identity and causality; applications only
/// supply body and tags, matching the paper's `Append(record, tags)` API.
#[derive(Debug, Clone, Default)]
pub struct RecordBuilder {
    tags: TagSet,
    body: Bytes,
}

impl RecordBuilder {
    /// Starts a new builder with an empty body and no tags.
    pub fn new() -> Self {
        RecordBuilder::default()
    }

    /// Sets the record body.
    pub fn body(mut self, body: impl Into<Bytes>) -> Self {
        self.body = body.into();
        self
    }

    /// Attaches a tag.
    pub fn tag(mut self, tag: Tag) -> Self {
        self.tags.push(tag);
        self
    }

    /// Finalizes the record once the client library knows its identity and
    /// dependency cut.
    pub fn build(self, id: RecordId, deps: VersionVector) -> Record {
        Record::new(id, deps, self.tags, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(host: u16, toid: u64) -> RecordId {
        RecordId::new(DatacenterId(host), TOId(toid))
    }

    #[test]
    fn tag_constructors() {
        let bare = Tag::key("commit");
        assert_eq!(bare.key, "commit");
        assert!(bare.value.is_none());

        let valued = Tag::with_value("key", "x");
        assert_eq!(valued.value, Some(TagValue::Str("x".into())));

        let int = Tag::with_value("seq", 42i64);
        assert_eq!(int.value, Some(TagValue::Int(42)));
    }

    #[test]
    fn tagset_lookup() {
        let tags = TagSet::new()
            .with(Tag::with_value("key", "x"))
            .with(Tag::key("put"));
        assert_eq!(tags.len(), 2);
        assert!(tags.contains_key("put"));
        assert!(!tags.contains_key("get"));
        assert_eq!(
            tags.get("key").unwrap().value,
            Some(TagValue::Str("x".into()))
        );
    }

    #[test]
    fn tagset_from_iterator() {
        let tags: TagSet = vec![Tag::key("a"), Tag::key("b")].into_iter().collect();
        assert_eq!(tags.len(), 2);
    }

    #[test]
    fn record_accessors() {
        let r = Record::new(
            rid(1, 3),
            VersionVector::new(2),
            TagSet::new(),
            Bytes::from_static(b"payload"),
        );
        assert_eq!(r.host(), DatacenterId(1));
        assert_eq!(r.toid(), TOId(3));
        assert_eq!(&r.body[..], b"payload");
    }

    #[test]
    fn wire_size_counts_body_deps_and_tags() {
        let r = Record::new(
            rid(0, 1),
            VersionVector::new(3),
            TagSet::new().with(Tag::with_value("key", "abc")),
            Bytes::from(vec![0u8; 100]),
        );
        // 16 fixed + 24 deps + (3 key + 3 value) + 100 body
        assert_eq!(r.wire_size(), 16 + 24 + 6 + 100);
    }

    #[test]
    fn builder_defers_identity() {
        let r = RecordBuilder::new()
            .body(Bytes::from_static(b"hello"))
            .tag(Tag::key("greeting"))
            .build(rid(2, 9), VersionVector::new(3));
        assert_eq!(r.id, rid(2, 9));
        assert!(r.tags.contains_key("greeting"));
        assert_eq!(&r.body[..], b"hello");
    }

    #[test]
    fn entry_wraps_record_with_lid() {
        let r = Record::new(
            rid(0, 1),
            VersionVector::new(1),
            TagSet::new(),
            Bytes::new(),
        );
        let e = Entry::new(LId(7), r);
        assert_eq!(e.lid, LId(7));
        assert_eq!(e.id(), rid(0, 1));
    }

    #[test]
    fn trace_id_is_not_part_of_record_identity() {
        let r = Record::new(
            rid(0, 1),
            VersionVector::new(1),
            TagSet::new(),
            Bytes::new(),
        );
        let traced = r.clone().with_trace(Some(TraceId(9)));
        assert_eq!(r, traced, "trace ids are diagnostic, not identity");
        // And it never crosses the wire: serde drops it.
        let json = serde_json::to_string(&traced).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trace, None);
    }

    #[test]
    fn record_roundtrips_serde() {
        let r = Record::new(
            rid(1, 2),
            VersionVector::from_entries(vec![TOId(1), TOId(2)]),
            TagSet::new().with(Tag::with_value("k", 7i64)),
            Bytes::from_static(b"body"),
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
