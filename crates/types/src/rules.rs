//! Read rules: the predicate language of the `Read(in: rules, out: records)`
//! API (§3).
//!
//! A rule "might involve TOIds, LIds, and tags information"; tag lookups may
//! constrain the value and bound the number of results ("return the most
//! recent 100 record LIds", §5.3).

use serde::{Deserialize, Serialize};

use crate::ids::{DatacenterId, LId, TOId};
use crate::record::{Entry, TagValue};

/// A comparison predicate over a tag's value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValuePredicate {
    /// Value equals the operand.
    Eq(TagValue),
    /// Value is strictly greater than the operand.
    Gt(TagValue),
    /// Value is greater than or equal to the operand.
    Ge(TagValue),
    /// Value is strictly less than the operand.
    Lt(TagValue),
    /// Value is less than or equal to the operand.
    Le(TagValue),
}

impl ValuePredicate {
    /// Evaluates the predicate against a tag value; a missing value never
    /// matches.
    pub fn matches(&self, value: Option<&TagValue>) -> bool {
        let Some(v) = value else { return false };
        match self {
            ValuePredicate::Eq(op) => v == op,
            ValuePredicate::Gt(op) => v > op,
            ValuePredicate::Ge(op) => v >= op,
            ValuePredicate::Lt(op) => v < op,
            ValuePredicate::Le(op) => v <= op,
        }
    }
}

/// One atomic read condition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Condition {
    /// The copy's `LId` equals the operand.
    LIdEq(LId),
    /// The copy's `LId` is strictly below the operand (used by Hyksos
    /// get-transactions: "read the most recent write at a position less than
    /// the snapshot head", Alg. 1).
    LIdBelow(LId),
    /// The copy's `LId` lies in the inclusive range.
    LIdRange(LId, LId),
    /// The record was created at `host` with exactly this `TOId`.
    TOIdEq(DatacenterId, TOId),
    /// The record was created at `host`.
    FromHost(DatacenterId),
    /// The record carries a tag with this key.
    HasTag(String),
    /// The record carries a tag with this key whose value satisfies the
    /// predicate.
    TagValue(String, ValuePredicate),
}

impl Condition {
    /// Whether `entry` satisfies this condition.
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            Condition::LIdEq(lid) => entry.lid == *lid,
            Condition::LIdBelow(lid) => entry.lid < *lid,
            Condition::LIdRange(lo, hi) => entry.lid >= *lo && entry.lid <= *hi,
            Condition::TOIdEq(host, toid) => {
                entry.record.host() == *host && entry.record.toid() == *toid
            }
            Condition::FromHost(host) => entry.record.host() == *host,
            Condition::HasTag(key) => entry.record.tags.contains_key(key),
            Condition::TagValue(key, pred) => entry
                .record
                .tags
                .iter()
                .any(|t| t.key == *key && pred.matches(t.value.as_ref())),
        }
    }
}

/// How many matches to return, and from which end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limit {
    /// All matching records, in `LId` order.
    All,
    /// The `n` matches with the highest `LId`s ("most recent"), returned in
    /// descending `LId` order.
    MostRecent(usize),
    /// The `n` matches with the lowest `LId`s, in ascending order.
    Oldest(usize),
}

/// A complete read rule: the conjunction of all conditions, bounded by a
/// limit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadRule {
    /// Conditions; a record matches when it satisfies all of them.
    pub conditions: Vec<Condition>,
    /// Result bound and direction.
    pub limit: Limit,
}

impl ReadRule {
    /// A rule with no conditions returning everything.
    pub fn all() -> Self {
        ReadRule {
            conditions: Vec::new(),
            limit: Limit::All,
        }
    }

    /// Starts a rule from one condition.
    pub fn where_(condition: Condition) -> Self {
        ReadRule {
            conditions: vec![condition],
            limit: Limit::All,
        }
    }

    /// Adds a condition (conjunction).
    pub fn and(mut self, condition: Condition) -> Self {
        self.conditions.push(condition);
        self
    }

    /// Bounds the result to the `n` most recent matches.
    pub fn most_recent(mut self, n: usize) -> Self {
        self.limit = Limit::MostRecent(n);
        self
    }

    /// Bounds the result to the `n` oldest matches.
    pub fn oldest(mut self, n: usize) -> Self {
        self.limit = Limit::Oldest(n);
        self
    }

    /// Whether `entry` satisfies every condition.
    pub fn matches(&self, entry: &Entry) -> bool {
        self.conditions.iter().all(|c| c.matches(entry))
    }

    /// Applies the rule to an iterator of entries **in ascending `LId`
    /// order**, producing the limited result set.
    pub fn apply<'a, I>(&self, entries: I) -> Vec<Entry>
    where
        I: Iterator<Item = &'a Entry>,
    {
        let mut matched: Vec<Entry> = entries.filter(|e| self.matches(e)).cloned().collect();
        match self.limit {
            Limit::All => matched,
            Limit::Oldest(n) => {
                matched.truncate(n);
                matched
            }
            Limit::MostRecent(n) => {
                let skip = matched.len().saturating_sub(n);
                let mut recent: Vec<Entry> = matched.split_off(skip);
                recent.reverse();
                recent
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causality::VersionVector;
    use crate::ids::RecordId;
    use crate::record::{Record, Tag, TagSet};
    use bytes::Bytes;

    fn entry(lid: u64, host: u16, toid: u64, tags: TagSet) -> Entry {
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(host), TOId(toid)),
                VersionVector::new(2),
                tags,
                Bytes::new(),
            ),
        )
    }

    fn sample_log() -> Vec<Entry> {
        vec![
            entry(0, 0, 1, TagSet::new().with(Tag::with_value("key", "x"))),
            entry(1, 1, 1, TagSet::new().with(Tag::with_value("key", "y"))),
            entry(2, 0, 2, TagSet::new().with(Tag::with_value("key", "x"))),
            entry(3, 1, 2, TagSet::new().with(Tag::with_value("seq", 10i64))),
            entry(4, 0, 3, TagSet::new().with(Tag::with_value("seq", 20i64))),
        ]
    }

    #[test]
    fn value_predicates() {
        let v = TagValue::Int(10);
        assert!(ValuePredicate::Eq(TagValue::Int(10)).matches(Some(&v)));
        assert!(ValuePredicate::Gt(TagValue::Int(9)).matches(Some(&v)));
        assert!(!ValuePredicate::Gt(TagValue::Int(10)).matches(Some(&v)));
        assert!(ValuePredicate::Ge(TagValue::Int(10)).matches(Some(&v)));
        assert!(ValuePredicate::Lt(TagValue::Int(11)).matches(Some(&v)));
        assert!(ValuePredicate::Le(TagValue::Int(10)).matches(Some(&v)));
        assert!(!ValuePredicate::Eq(TagValue::Int(10)).matches(None));
    }

    #[test]
    fn lid_conditions() {
        let log = sample_log();
        assert!(Condition::LIdEq(LId(2)).matches(&log[2]));
        assert!(Condition::LIdBelow(LId(3)).matches(&log[2]));
        assert!(!Condition::LIdBelow(LId(2)).matches(&log[2]));
        assert!(Condition::LIdRange(LId(1), LId(3)).matches(&log[3]));
        assert!(!Condition::LIdRange(LId(1), LId(3)).matches(&log[4]));
    }

    #[test]
    fn toid_and_host_conditions() {
        let log = sample_log();
        assert!(Condition::TOIdEq(DatacenterId(1), TOId(2)).matches(&log[3]));
        assert!(!Condition::TOIdEq(DatacenterId(0), TOId(2)).matches(&log[3]));
        assert!(Condition::FromHost(DatacenterId(0)).matches(&log[0]));
        assert!(!Condition::FromHost(DatacenterId(0)).matches(&log[1]));
    }

    #[test]
    fn tag_conditions() {
        let log = sample_log();
        assert!(Condition::HasTag("key".into()).matches(&log[0]));
        assert!(!Condition::HasTag("seq".into()).matches(&log[0]));
        let pred = Condition::TagValue("seq".into(), ValuePredicate::Gt(TagValue::Int(15)));
        assert!(pred.matches(&log[4]));
        assert!(!pred.matches(&log[3]));
    }

    #[test]
    fn rule_conjunction() {
        let log = sample_log();
        let rule = ReadRule::where_(Condition::HasTag("key".into()))
            .and(Condition::FromHost(DatacenterId(0)));
        let hits = rule.apply(log.iter());
        assert_eq!(
            hits.iter().map(|e| e.lid).collect::<Vec<_>>(),
            vec![LId(0), LId(2)]
        );
    }

    #[test]
    fn most_recent_returns_descending() {
        let log = sample_log();
        // Hyksos-style lookup: most recent write to key x below the head.
        let rule = ReadRule::where_(Condition::TagValue(
            "key".into(),
            ValuePredicate::Eq(TagValue::Str("x".into())),
        ))
        .and(Condition::LIdBelow(LId(5)))
        .most_recent(1);
        let hits = rule.apply(log.iter());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lid, LId(2));
    }

    #[test]
    fn most_recent_larger_than_matches_returns_all() {
        let log = sample_log();
        let rule = ReadRule::where_(Condition::HasTag("seq".into())).most_recent(10);
        let hits = rule.apply(log.iter());
        assert_eq!(
            hits.iter().map(|e| e.lid).collect::<Vec<_>>(),
            vec![LId(4), LId(3)]
        );
    }

    #[test]
    fn oldest_truncates_front() {
        let log = sample_log();
        let rule = ReadRule::all().oldest(2);
        let hits = rule.apply(log.iter());
        assert_eq!(
            hits.iter().map(|e| e.lid).collect::<Vec<_>>(),
            vec![LId(0), LId(1)]
        );
    }

    #[test]
    fn empty_rule_matches_everything() {
        let log = sample_log();
        assert_eq!(ReadRule::all().apply(log.iter()).len(), log.len());
    }
}
