//! # chariots-types
//!
//! Fundamental data model for the Chariots shared-log stack — the Rust
//! reproduction of *Chariots: A Scalable Shared Log for Data Management in
//! Multi-Datacenter Cloud Environments* (EDBT 2015).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`ids`] — newtype identifiers: [`DatacenterId`], [`LId`] (log
//!   position), [`TOId`] (per-host total order), [`RecordId`],
//!   [`MaintainerId`], [`Epoch`].
//! * [`record`] — [`Record`]s with opaque bodies and system-visible
//!   [`Tag`]s; [`Entry`] couples a record copy with its `LId`.
//! * [`causality`] — [`VersionVector`] causal cuts over per-datacenter
//!   total orders.
//! * [`rules`] — the [`ReadRule`] predicate language of the `Read` API.
//! * [`config`] — builder-style deployment configuration.
//! * [`error`] — [`ChariotsError`] and the workspace [`Result`] alias.
//! * [`wire`] — the hand-rolled [`Wire`] codec the TCP transport backend
//!   serializes with (zero-copy record bodies via [`WireReader`]), plus
//!   the shared [`crc32`] used by both the WAL and transport frames.
//!
//! ```
//! use chariots_types::{DatacenterId, Record, RecordBuilder, Tag, TOId, RecordId, VersionVector};
//!
//! // A record as an application client builds it: tags + body; the
//! // system supplies identity and causality.
//! let record = RecordBuilder::new()
//!     .body("put x=10")
//!     .tag(Tag::with_value("key", "x"))
//!     .build(
//!         RecordId::new(DatacenterId(0), TOId(1)),
//!         VersionVector::new(2),
//!     );
//! assert_eq!(record.id.to_string(), "<A,1>");
//! assert!(record.tags.contains_key("key"));
//! ```

#![warn(missing_docs)]

pub mod causality;
pub mod config;
pub mod error;
pub mod ids;
pub mod record;
pub mod rules;
pub mod wire;

pub use causality::{compare, CausalOrder, VersionVector};
pub use config::{
    ChariotsConfig, CommitMode, FLStoreConfig, StageCounts, TransportMode, WalSyncPolicy,
};
pub use error::{ChariotsError, Result};
pub use ids::{
    ClientId, DatacenterId, Epoch, Generation, LId, MaintainerId, RecordId, TOId, TraceId,
};
pub use record::{Entry, Record, RecordBuilder, Tag, TagSet, TagValue};
pub use rules::{Condition, Limit, ReadRule, ValuePredicate};
pub use wire::{crc32, decode_exact, encode_to_vec, Wire, WireReader};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_vv(n: usize) -> impl Strategy<Value = VersionVector> {
        proptest::collection::vec(0u64..64, n)
            .prop_map(|v| VersionVector::from_entries(v.into_iter().map(TOId).collect()))
    }

    fn arb_tag() -> impl Strategy<Value = Tag> {
        (
            "[a-z]{0,6}",
            proptest::option::of(prop_oneof![
                any::<i64>().prop_map(TagValue::Int),
                "[ -~]{0,12}".prop_map(TagValue::Str),
            ]),
        )
            .prop_map(|(key, value)| Tag { key, value })
    }

    fn arb_record() -> impl Strategy<Value = Record> {
        (
            0u16..4,
            0u64..1_000_000,
            arb_vv(3),
            proptest::collection::vec(arb_tag(), 0..4),
            proptest::collection::vec(any::<u8>(), 0..256),
            proptest::option::of(any::<u64>().prop_map(TraceId)),
        )
            .prop_map(|(host, toid, deps, tags, body, trace)| {
                Record::new(
                    RecordId::new(DatacenterId(host), TOId(toid)),
                    deps,
                    TagSet::from_tags(tags),
                    bytes::Bytes::from(body),
                )
                .with_trace(trace)
            })
    }

    proptest! {
        /// merge is the lattice join: commutative, idempotent, and an upper
        /// bound of both operands.
        #[test]
        fn merge_is_join(a in arb_vv(4), b in arb_vv(4)) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            prop_assert!(ab.dominates(&a));
            prop_assert!(ab.dominates(&b));
            let mut twice = ab.clone();
            twice.merge(&a);
            prop_assert_eq!(&twice, &ab);
        }

        /// dominates is a partial order: reflexive and transitive.
        #[test]
        fn dominates_is_partial_order(a in arb_vv(4), b in arb_vv(4), c in arb_vv(4)) {
            prop_assert!(a.dominates(&a));
            if a.dominates(&b) && b.dominates(&c) {
                prop_assert!(a.dominates(&c));
            }
            // Antisymmetry up to equality.
            if a.dominates(&b) && b.dominates(&a) {
                prop_assert_eq!(compare(&a, &b), CausalOrder::Equal);
            }
        }

        /// compare is consistent with dominates in both directions.
        #[test]
        fn compare_consistency(a in arb_vv(3), b in arb_vv(3)) {
            match compare(&a, &b) {
                CausalOrder::Equal => {
                    prop_assert!(a.dominates(&b) && b.dominates(&a));
                }
                CausalOrder::After => {
                    prop_assert!(a.dominates(&b) && !b.dominates(&a));
                }
                CausalOrder::Before => {
                    prop_assert!(!a.dominates(&b) && b.dominates(&a));
                }
                CausalOrder::Concurrent => {
                    prop_assert!(!a.dominates(&b) && !b.dominates(&a));
                }
            }
        }

        /// The wire codec is lossless on arbitrary record batches —
        /// including the trace id, which serde deliberately drops but the
        /// TCP backend must carry.
        #[test]
        fn wire_roundtrips_arbitrary_record_batches(
            batch in proptest::collection::vec((0u64..1 << 40, arb_record()), 0..16),
        ) {
            let entries: Vec<Entry> =
                batch.into_iter().map(|(l, r)| Entry::new(LId(l), r)).collect();
            let buf = wire::encode_to_vec(&entries);
            let back: Vec<Entry> =
                wire::decode_exact(bytes::Bytes::from(buf)).expect("decodes");
            prop_assert_eq!(back.len(), entries.len());
            for (b, e) in back.iter().zip(entries.iter()) {
                prop_assert_eq!(b, e);
                prop_assert_eq!(b.record.trace, e.record.trace);
            }
        }

        /// Decoding arbitrary garbage never panics; it either produces a
        /// value or rejects cleanly.
        #[test]
        fn wire_decode_of_garbage_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut r = WireReader::new(bytes::Bytes::from(raw));
            let _ = Vec::<Entry>::decode(&mut r);
        }

        /// ReadRule::apply with MostRecent(n) returns at most n entries in
        /// strictly descending LId order, and they are exactly the top
        /// matches.
        #[test]
        fn most_recent_is_sorted_suffix(lids in proptest::collection::btree_set(0u64..200, 0..40), n in 1usize..10) {
            use bytes::Bytes;
            let entries: Vec<Entry> = lids.iter().map(|&l| Entry::new(
                LId(l),
                Record::new(
                    RecordId::new(DatacenterId(0), TOId(l + 1)),
                    VersionVector::new(1),
                    TagSet::new(),
                    Bytes::new(),
                ),
            )).collect();
            let rule = ReadRule::all().most_recent(n);
            let hits = rule.apply(entries.iter());
            prop_assert!(hits.len() <= n);
            prop_assert!(hits.windows(2).all(|w| w[0].lid > w[1].lid));
            let expected: Vec<LId> = lids.iter().rev().take(n).map(|&l| LId(l)).collect();
            let got: Vec<LId> = hits.iter().map(|e| e.lid).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
