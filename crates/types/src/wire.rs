//! Hand-rolled wire codec for the TCP transport backend.
//!
//! The simnet substrate moves values between stages by `Send`ing them over
//! crossbeam channels — no bytes, no copies. The real TCP backend needs an
//! on-wire form, and this module is its codec seam: a tiny, explicit
//! [`Wire`] trait (length-delimited little-endian fields, no reflection,
//! no external serialization framework) plus the [`WireReader`] cursor
//! that decodes from a refcounted [`Bytes`] buffer so record **bodies are
//! sliced out of the receive buffer without copying**.
//!
//! Design rules:
//!
//! - `encode` is infallible and appends to a caller-owned `Vec<u8>` — the
//!   transport reuses one buffer per connection, so the hot path does one
//!   serialization and no intermediate allocations.
//! - `decode` is total: any byte sequence either yields a value or `None`.
//!   Decoders never panic, never over-read, and cap length prefixes against
//!   the bytes actually remaining, so a corrupt length cannot drive an
//!   allocation bomb.
//! - Variable-length payloads ([`Bytes`]) decode as zero-copy slices of
//!   the backing buffer (`Bytes::slice`), which is what keeps the TCP
//!   receive path at zero intermediate copies of record bodies.
//!
//! The frame layer (length prefix + CRC, torn-frame reassembly) lives in
//! `chariots-simnet::transport`; this module only defines payload bytes.
//! The CRC-32 implementation lives here because both the WAL's frame
//! format and the transport's share it.

use bytes::Bytes;

use crate::causality::VersionVector;
use crate::error::ChariotsError;
use crate::ids::{
    ClientId, DatacenterId, Epoch, Generation, LId, MaintainerId, RecordId, TOId, TraceId,
};
use crate::record::{Entry, Record, Tag, TagSet, TagValue};

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Computes the CRC-32 checksum of `data` (shared by the WAL frame format
/// and the TCP transport's frame header).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Decoding cursor over a refcounted byte buffer.
///
/// Fixed-width reads copy out of the buffer; [`WireReader::take_bytes`]
/// returns a zero-copy [`Bytes`] slice sharing the backing allocation —
/// the receive path hands each decoded record body a view into the
/// connection's frame, not a fresh allocation.
#[derive(Debug, Clone)]
pub struct WireReader {
    data: Bytes,
    pos: usize,
}

impl WireReader {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: Bytes) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the reader is exhausted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    #[inline]
    fn chunk(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.chunk(1).map(|s| s[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        self.chunk(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.chunk(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.chunk(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    /// Takes `n` bytes as a zero-copy slice of the backing buffer.
    pub fn take_bytes(&mut self, n: usize) -> Option<Bytes> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = self.data.slice(self.pos..end);
        self.pos = end;
        Some(s)
    }

    /// Reads a `u32` length prefix, bounded by the bytes remaining (a
    /// corrupt length fails cleanly instead of driving a huge allocation).
    pub fn len_prefix(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return None;
        }
        Some(n)
    }

    /// Reads a `u32` count prefix for a sequence of items each at least
    /// `min_item_bytes` wide — rejects counts the remaining bytes cannot
    /// possibly satisfy, so `Vec` preallocation stays bounded.
    pub fn count_prefix(&mut self, min_item_bytes: usize) -> Option<usize> {
        let n = self.u32()? as usize;
        if n.checked_mul(min_item_bytes.max(1))? > self.remaining() {
            return None;
        }
        Some(n)
    }
}

/// A value with a byte-level wire form.
///
/// Implementations come in matched pairs: `decode(encode(v)) == Some(v)`
/// for every value, and `decode` of arbitrary bytes never panics.
pub trait Wire: Sized {
    /// Appends the wire form of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes one value, consuming its bytes from `r`. `None` means the
    /// bytes are malformed or truncated; the reader position is then
    /// unspecified and the whole message must be discarded.
    fn decode(r: &mut WireReader) -> Option<Self>;
}

/// Encodes `value` into a fresh buffer (convenience for tests and
/// single-shot messages; the transport hot path reuses buffers instead).
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes one `T` from `data`, requiring every byte to be consumed.
pub fn decode_exact<T: Wire>(data: Bytes) -> Option<T> {
    let mut r = WireReader::new(data);
    let v = T::decode(&mut r)?;
    if r.is_empty() {
        Some(v)
    } else {
        None
    }
}

macro_rules! wire_le_int {
    ($($t:ty => $read:ident),* $(,)?) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader) -> Option<Self> {
                r.$read()
            }
        }
    )*};
}

wire_le_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, i64 => i64);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        match r.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

// usize crosses the wire as u64 so 32- and 64-bit peers agree.
impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        usize::try_from(r.u64()?).ok()
    }
}

impl Wire for Bytes {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        buf.extend_from_slice(self);
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        let n = r.len_prefix()?;
        r.take_bytes(n)
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        let n = r.len_prefix()?;
        let raw = r.take_bytes(n)?;
        String::from_utf8(raw.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        match r.u8()? {
            0 => Some(None),
            1 => Some(Some(T::decode(r)?)),
            _ => None,
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        let n = r.count_prefix(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Some(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        Some((A::decode(r)?, B::decode(r)?))
    }
}

macro_rules! wire_newtype {
    ($($t:ident($inner:ty)),* $(,)?) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.0.encode(buf);
            }
            fn decode(r: &mut WireReader) -> Option<Self> {
                Some($t(<$inner>::decode(r)?))
            }
        }
    )*};
}

wire_newtype!(
    DatacenterId(u16),
    LId(u64),
    TOId(u64),
    MaintainerId(u16),
    Generation(u64),
    ClientId(u32),
    Epoch(u32),
    TraceId(u64),
);

impl Wire for RecordId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.host.encode(buf);
        self.toid.encode(buf);
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        Some(RecordId {
            host: DatacenterId::decode(r)?,
            toid: TOId::decode(r)?,
        })
    }
}

impl Wire for TagValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TagValue::Int(i) => {
                buf.push(0);
                i.encode(buf);
            }
            TagValue::Str(s) => {
                buf.push(1);
                s.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        match r.u8()? {
            0 => Some(TagValue::Int(i64::decode(r)?)),
            1 => Some(TagValue::Str(String::decode(r)?)),
            _ => None,
        }
    }
}

impl Wire for Tag {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.key.encode(buf);
        self.value.encode(buf);
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        Some(Tag {
            key: String::decode(r)?,
            value: Option::<TagValue>::decode(r)?,
        })
    }
}

impl Wire for TagSet {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for t in self.iter() {
            t.encode(buf);
        }
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        let n = r.count_prefix(1)?;
        let mut tags = Vec::with_capacity(n);
        for _ in 0..n {
            tags.push(Tag::decode(r)?);
        }
        Some(TagSet::from_tags(tags))
    }
}

impl Wire for VersionVector {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for (_, t) in self.iter() {
            t.encode(buf);
        }
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        let n = r.count_prefix(8)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(TOId::decode(r)?);
        }
        Some(VersionVector::from_entries(entries))
    }
}

impl Wire for Record {
    // Unlike serde (which skips it), the wire form carries the trace id:
    // the TCP backend must preserve sampled-trace continuity across hops
    // exactly as the in-process channels do.
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.deps.encode(buf);
        self.tags.encode(buf);
        self.body.encode(buf);
        self.trace.encode(buf);
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        let id = RecordId::decode(r)?;
        let deps = VersionVector::decode(r)?;
        let tags = TagSet::decode(r)?;
        let body = Bytes::decode(r)?;
        let trace = Option::<TraceId>::decode(r)?;
        Some(Record::new(id, deps, tags, body).with_trace(trace))
    }
}

impl Wire for Entry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.lid.encode(buf);
        self.record.encode(buf);
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        Some(Entry {
            lid: LId::decode(r)?,
            record: Record::decode(r)?,
        })
    }
}

impl Wire for ChariotsError {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ChariotsError::NotYetAvailable(lid) => {
                buf.push(0);
                lid.encode(buf);
            }
            ChariotsError::GarbageCollected(lid) => {
                buf.push(1);
                lid.encode(buf);
            }
            ChariotsError::WrongMaintainer { asked, owner, lid } => {
                buf.push(2);
                asked.encode(buf);
                owner.encode(buf);
                lid.encode(buf);
            }
            ChariotsError::DuplicateRecord(id) => {
                buf.push(3);
                id.encode(buf);
            }
            ChariotsError::Fenced {
                group,
                sent,
                current,
            } => {
                buf.push(4);
                group.encode(buf);
                sent.encode(buf);
                current.encode(buf);
            }
            ChariotsError::NoLivePrimary(group) => {
                buf.push(5);
                group.encode(buf);
            }
            ChariotsError::Unavailable(s) => {
                buf.push(6);
                s.encode(buf);
            }
            ChariotsError::Overloaded(s) => {
                buf.push(7);
                s.encode(buf);
            }
            ChariotsError::UnknownDatacenter(dc) => {
                buf.push(8);
                dc.encode(buf);
            }
            ChariotsError::InvalidConfig(s) => {
                buf.push(9);
                s.encode(buf);
            }
            ChariotsError::QuorumLost {
                group,
                required,
                durable,
            } => {
                buf.push(10);
                group.encode(buf);
                required.encode(buf);
                durable.encode(buf);
            }
            ChariotsError::ShutDown => buf.push(11),
            ChariotsError::Storage(s) => {
                buf.push(12);
                s.encode(buf);
            }
            ChariotsError::Transport(s) => {
                buf.push(13);
                s.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        Some(match r.u8()? {
            0 => ChariotsError::NotYetAvailable(LId::decode(r)?),
            1 => ChariotsError::GarbageCollected(LId::decode(r)?),
            2 => ChariotsError::WrongMaintainer {
                asked: MaintainerId::decode(r)?,
                owner: MaintainerId::decode(r)?,
                lid: LId::decode(r)?,
            },
            3 => ChariotsError::DuplicateRecord(RecordId::decode(r)?),
            4 => ChariotsError::Fenced {
                group: MaintainerId::decode(r)?,
                sent: Generation::decode(r)?,
                current: Generation::decode(r)?,
            },
            5 => ChariotsError::NoLivePrimary(MaintainerId::decode(r)?),
            6 => ChariotsError::Unavailable(String::decode(r)?),
            7 => ChariotsError::Overloaded(String::decode(r)?),
            8 => ChariotsError::UnknownDatacenter(DatacenterId::decode(r)?),
            9 => ChariotsError::InvalidConfig(String::decode(r)?),
            10 => ChariotsError::QuorumLost {
                group: MaintainerId::decode(r)?,
                required: usize::decode(r)?,
                durable: usize::decode(r)?,
            },
            11 => ChariotsError::ShutDown,
            12 => ChariotsError::Storage(String::decode(r)?),
            13 => ChariotsError::Transport(String::decode(r)?),
            _ => return None,
        })
    }
}

impl<T: Wire> Wire for std::result::Result<T, ChariotsError> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                buf.push(0);
                v.encode(buf);
            }
            Err(e) => {
                buf.push(1);
                e.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Option<Self> {
        match r.u8()? {
            0 => Some(Ok(T::decode(r)?)),
            1 => Some(Err(ChariotsError::decode(r)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let buf = encode_to_vec(&v);
        let back: T = decode_exact(Bytes::from(buf)).expect("decodes");
        assert_eq!(back, v);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(usize::MAX);
        roundtrip(String::from("héllo"));
        roundtrip(Bytes::from_static(b"body"));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(LId(9)));
        roundtrip(vec![TOId(1), TOId(2)]);
        roundtrip((TOId(3), LId(4)));
    }

    #[test]
    fn record_and_entry_roundtrip_with_trace() {
        let record = Record::new(
            RecordId::new(DatacenterId(2), TOId(7)),
            VersionVector::from_entries(vec![TOId(1), TOId(0), TOId(3)]),
            TagSet::new()
                .with(Tag::key("put"))
                .with(Tag::with_value("seq", 42i64))
                .with(Tag::with_value("user", "u9")),
            Bytes::from_static(b"payload bytes"),
        )
        .with_trace(Some(TraceId(77)));
        let buf = encode_to_vec(&record);
        let back: Record = decode_exact(Bytes::from(buf)).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.trace, Some(TraceId(77)), "trace survives the wire");
        roundtrip(Entry::new(LId(11), record));
    }

    #[test]
    fn entry_body_decodes_zero_copy() {
        let record = Record::new(
            RecordId::new(DatacenterId(0), TOId(1)),
            VersionVector::new(1),
            TagSet::new(),
            Bytes::from(vec![7u8; 64]),
        );
        let frame = Bytes::from(encode_to_vec(&Entry::new(LId(0), record)));
        let back: Entry = decode_exact(frame.clone()).unwrap();
        // The decoded body points into the frame allocation, not a copy.
        let body_ptr = back.record.body.as_ptr() as usize;
        let frame_ptr = frame.as_ptr() as usize;
        assert!(
            body_ptr >= frame_ptr && body_ptr < frame_ptr + frame.len(),
            "body must be a zero-copy slice of the frame"
        );
    }

    #[test]
    fn every_error_variant_roundtrips() {
        let variants = vec![
            ChariotsError::NotYetAvailable(LId(1)),
            ChariotsError::GarbageCollected(LId(2)),
            ChariotsError::WrongMaintainer {
                asked: MaintainerId(0),
                owner: MaintainerId(3),
                lid: LId(8),
            },
            ChariotsError::DuplicateRecord(RecordId::new(DatacenterId(1), TOId(2))),
            ChariotsError::Fenced {
                group: MaintainerId(1),
                sent: Generation(2),
                current: Generation(3),
            },
            ChariotsError::NoLivePrimary(MaintainerId(2)),
            ChariotsError::Unavailable("m0".into()),
            ChariotsError::Overloaded("q1".into()),
            ChariotsError::UnknownDatacenter(DatacenterId(9)),
            ChariotsError::InvalidConfig("bad".into()),
            ChariotsError::QuorumLost {
                group: MaintainerId(0),
                required: 2,
                durable: 1,
            },
            ChariotsError::ShutDown,
            ChariotsError::Storage("disk".into()),
            ChariotsError::Transport("connection reset".into()),
        ];
        for v in variants {
            roundtrip(v);
        }
        roundtrip::<Result<LId, ChariotsError>>(Err(ChariotsError::ShutDown));
        roundtrip(Ok::<_, ChariotsError>(vec![(TOId(1), LId(2))]));
    }

    #[test]
    fn truncated_and_corrupt_inputs_decode_to_none() {
        let record = Record::new(
            RecordId::new(DatacenterId(2), TOId(7)),
            VersionVector::from_entries(vec![TOId(1)]),
            TagSet::new().with(Tag::with_value("k", "v")),
            Bytes::from_static(b"abc"),
        );
        let full = encode_to_vec(&record);
        // Every strict prefix is rejected, never panics.
        for cut in 0..full.len() {
            let mut r = WireReader::new(Bytes::copy_from_slice(&full[..cut]));
            assert!(Record::decode(&mut r).is_none(), "prefix of {cut} bytes");
        }
        // A corrupt length prefix cannot drive a huge allocation.
        let mut bomb = Vec::new();
        bomb.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = WireReader::new(Bytes::from(bomb));
        assert!(Vec::<Entry>::decode(&mut r).is_none());
    }
}
