//! Error types shared across the Chariots stack.

use std::fmt;

use crate::ids::{DatacenterId, Generation, LId, MaintainerId, RecordId};

/// Errors surfaced by the shared-log APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChariotsError {
    /// The requested `LId` is beyond the readable head of the log, or lies
    /// in a temporary gap (§5.4: a read below the head never observes one).
    NotYetAvailable(LId),
    /// The requested `LId` was garbage-collected (§6.1).
    GarbageCollected(LId),
    /// The addressed maintainer does not own the `LId` under the current
    /// epoch's round-robin assignment.
    WrongMaintainer {
        /// The maintainer that was asked.
        asked: MaintainerId,
        /// The maintainer that owns the position.
        owner: MaintainerId,
        /// The position in question.
        lid: LId,
    },
    /// A record with this identity was already incorporated (filters enforce
    /// exactly-once, §6.2); the duplicate was dropped.
    DuplicateRecord(RecordId),
    /// The request carried a stale replica-group generation: a failover
    /// promoted a new primary and fenced the sender's generation.
    Fenced {
        /// The replica group addressed.
        group: MaintainerId,
        /// The generation the request was stamped with.
        sent: Generation,
        /// The group's current generation.
        current: Generation,
    },
    /// The replica group has no live primary to serve the request (all
    /// replicas crashed or still catching up).
    NoLivePrimary(MaintainerId),
    /// The machine or datacenter addressed is down or partitioned away.
    Unavailable(String),
    /// A buffer reached its configured capacity bound.
    Overloaded(String),
    /// The deployment does not know this datacenter.
    UnknownDatacenter(DatacenterId),
    /// Configuration rejected by validation.
    InvalidConfig(String),
    /// A pipelined commit could not reach its durability quorum: too many
    /// replicas failed before f+1 copies of the batch were durable.
    QuorumLost {
        /// The replica group whose quorum was lost.
        group: MaintainerId,
        /// Durable acks required for the batch to commit.
        required: usize,
        /// Durable acks actually received before the quorum became
        /// unreachable.
        durable: usize,
    },
    /// The component was asked to operate after shutdown.
    ShutDown,
    /// Persistent storage failed (segment I/O).
    Storage(String),
    /// A transport-level I/O fault: connection reset, reconnect in
    /// progress, or a frame failing its CRC. Transient by construction —
    /// the TCP backend reconnects on the next send, so `RetryPolicy`-driven
    /// clients ride these out like failover windows.
    Transport(String),
}

impl fmt::Display for ChariotsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChariotsError::NotYetAvailable(lid) => {
                write!(f, "log position {lid} is not yet readable")
            }
            ChariotsError::GarbageCollected(lid) => {
                write!(f, "log position {lid} was garbage-collected")
            }
            ChariotsError::WrongMaintainer { asked, owner, lid } => write!(
                f,
                "maintainer {asked} does not own {lid}; it belongs to {owner}"
            ),
            ChariotsError::DuplicateRecord(id) => {
                write!(f, "record {id} was already incorporated")
            }
            ChariotsError::Fenced {
                group,
                sent,
                current,
            } => write!(
                f,
                "request to group {group} fenced: sent generation {sent}, current is {current}"
            ),
            ChariotsError::NoLivePrimary(group) => {
                write!(f, "replica group {group} has no live primary")
            }
            ChariotsError::Unavailable(what) => write!(f, "{what} is unavailable"),
            ChariotsError::Overloaded(what) => write!(f, "{what} is overloaded"),
            ChariotsError::UnknownDatacenter(dc) => write!(f, "unknown datacenter {dc}"),
            ChariotsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ChariotsError::QuorumLost {
                group,
                required,
                durable,
            } => write!(
                f,
                "group {group}: quorum lost ({durable} of {required} required durable acks)"
            ),
            ChariotsError::ShutDown => write!(f, "component is shut down"),
            ChariotsError::Storage(msg) => write!(f, "storage error: {msg}"),
            ChariotsError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for ChariotsError {}

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, ChariotsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ChariotsError::WrongMaintainer {
            asked: MaintainerId(0),
            owner: MaintainerId(2),
            lid: LId(4096),
        };
        assert_eq!(
            e.to_string(),
            "maintainer M0 does not own L4096; it belongs to M2"
        );
        assert!(ChariotsError::NotYetAvailable(LId(9))
            .to_string()
            .contains("L9"));
        assert!(ChariotsError::ShutDown.to_string().contains("shut down"));
        let fenced = ChariotsError::Fenced {
            group: MaintainerId(1),
            sent: crate::ids::Generation(2),
            current: crate::ids::Generation(3),
        };
        assert_eq!(
            fenced.to_string(),
            "request to group M1 fenced: sent generation g2, current is g3"
        );
        assert!(ChariotsError::NoLivePrimary(MaintainerId(0))
            .to_string()
            .contains("M0"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<ChariotsError>();
    }
}
