//! Causal metadata: version vectors over per-datacenter total orders.
//!
//! Chariots orders the replicated log by *causality* (§3): records created at
//! the same datacenter are totally ordered by their [`TOId`]s, and a record
//! must appear after everything its appender had observed. Because each
//! datacenter's records are already totally ordered, a causal cut is fully
//! described by one `TOId` per datacenter — a **version vector**. A record's
//! dependency vector is the cut its host datacenter had incorporated when the
//! record was appended.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{DatacenterId, TOId};

/// A causal cut: for every datacenter, the highest `TOId` included in the cut.
///
/// `VersionVector` is fixed-size (one entry per datacenter in the
/// deployment). Entry `d` holds the largest `TOId` of datacenter `d`'s
/// records contained in the cut, with [`TOId::NONE`] meaning "none".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VersionVector {
    entries: Vec<TOId>,
}

impl VersionVector {
    /// An all-zero vector for a deployment of `num_datacenters` replicas.
    pub fn new(num_datacenters: usize) -> Self {
        VersionVector {
            entries: vec![TOId::NONE; num_datacenters],
        }
    }

    /// Builds a vector directly from per-datacenter entries.
    pub fn from_entries(entries: Vec<TOId>) -> Self {
        VersionVector { entries }
    }

    /// Number of datacenters this vector covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector covers zero datacenters (degenerate deployments).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cut's entry for datacenter `dc`.
    ///
    /// Out-of-range datacenters (possible transiently while a deployment is
    /// growing) read as [`TOId::NONE`].
    #[inline]
    pub fn get(&self, dc: DatacenterId) -> TOId {
        self.entries.get(dc.index()).copied().unwrap_or(TOId::NONE)
    }

    /// Sets the entry for `dc`, growing the vector if needed.
    pub fn set(&mut self, dc: DatacenterId, toid: TOId) {
        if dc.index() >= self.entries.len() {
            self.entries.resize(dc.index() + 1, TOId::NONE);
        }
        self.entries[dc.index()] = toid;
    }

    /// Raises the entry for `dc` to `toid` if it is currently lower.
    pub fn observe(&mut self, dc: DatacenterId, toid: TOId) {
        if toid > self.get(dc) {
            self.set(dc, toid);
        }
    }

    /// Pointwise maximum with `other` (join in the version-vector lattice).
    pub fn merge(&mut self, other: &VersionVector) {
        if other.entries.len() > self.entries.len() {
            self.entries.resize(other.entries.len(), TOId::NONE);
        }
        for (mine, theirs) in self.entries.iter_mut().zip(other.entries.iter()) {
            if theirs > mine {
                *mine = *theirs;
            }
        }
    }

    /// Whether every entry of `self` is ≥ the matching entry of `other`.
    ///
    /// When the *applied* vector of a replica dominates a record's dependency
    /// vector, all of that record's causal dependencies are already in the
    /// replica's log and the record may be assigned an `LId`.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        let n = self.entries.len().max(other.entries.len());
        (0..n).all(|i| {
            let mine = self.entries.get(i).copied().unwrap_or(TOId::NONE);
            let theirs = other.entries.get(i).copied().unwrap_or(TOId::NONE);
            mine >= theirs
        })
    }

    /// Whether the cut contains record `toid` of datacenter `dc`.
    #[inline]
    pub fn covers(&self, dc: DatacenterId, toid: TOId) -> bool {
        self.get(dc) >= toid
    }

    /// Iterates `(datacenter, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DatacenterId, TOId)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, &t)| (DatacenterId(i as u16), t))
    }

    /// Sum of all entries — a scalar progress measure used by tests and the
    /// bench harness (total records covered by the cut).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|t| t.as_u64()).sum()
    }
}

impl fmt::Display for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", t.0)?;
        }
        write!(f, "]")
    }
}

/// Outcome of comparing two version vectors in the causal partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalOrder {
    /// The vectors are identical.
    Equal,
    /// The left cut is strictly contained in the right.
    Before,
    /// The left cut strictly contains the right.
    After,
    /// Neither contains the other: the cuts are concurrent.
    Concurrent,
}

/// Compares two cuts in the causal partial order.
pub fn compare(a: &VersionVector, b: &VersionVector) -> CausalOrder {
    let a_dom = a.dominates(b);
    let b_dom = b.dominates(a);
    match (a_dom, b_dom) {
        (true, true) => CausalOrder::Equal,
        (true, false) => CausalOrder::After,
        (false, true) => CausalOrder::Before,
        (false, false) => CausalOrder::Concurrent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(i: u16) -> DatacenterId {
        DatacenterId(i)
    }

    #[test]
    fn new_vector_is_all_none() {
        let v = VersionVector::new(3);
        assert_eq!(v.len(), 3);
        for (_, t) in v.iter() {
            assert_eq!(t, TOId::NONE);
        }
        assert_eq!(v.total(), 0);
    }

    #[test]
    fn observe_only_raises() {
        let mut v = VersionVector::new(2);
        v.observe(dc(0), TOId(5));
        assert_eq!(v.get(dc(0)), TOId(5));
        v.observe(dc(0), TOId(3));
        assert_eq!(v.get(dc(0)), TOId(5), "observe must never lower an entry");
        v.observe(dc(0), TOId(9));
        assert_eq!(v.get(dc(0)), TOId(9));
    }

    #[test]
    fn set_grows_vector() {
        let mut v = VersionVector::new(1);
        v.set(dc(4), TOId(2));
        assert_eq!(v.len(), 5);
        assert_eq!(v.get(dc(4)), TOId(2));
        assert_eq!(v.get(dc(2)), TOId::NONE);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let v = VersionVector::new(2);
        assert_eq!(v.get(dc(9)), TOId::NONE);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = VersionVector::from_entries(vec![TOId(3), TOId(1), TOId(0)]);
        let b = VersionVector::from_entries(vec![TOId(2), TOId(5), TOId(1)]);
        a.merge(&b);
        assert_eq!(
            a,
            VersionVector::from_entries(vec![TOId(3), TOId(5), TOId(1)])
        );
    }

    #[test]
    fn merge_grows_to_longer_vector() {
        let mut a = VersionVector::from_entries(vec![TOId(3)]);
        let b = VersionVector::from_entries(vec![TOId(1), TOId(2)]);
        a.merge(&b);
        assert_eq!(a, VersionVector::from_entries(vec![TOId(3), TOId(2)]));
    }

    #[test]
    fn dominates_handles_unequal_lengths() {
        let a = VersionVector::from_entries(vec![TOId(3), TOId(0)]);
        let b = VersionVector::from_entries(vec![TOId(3)]);
        assert!(a.dominates(&b));
        assert!(b.dominates(&a), "trailing NONE entries are implicit");
    }

    #[test]
    fn covers_checks_single_entry() {
        let v = VersionVector::from_entries(vec![TOId(2), TOId(7)]);
        assert!(v.covers(dc(1), TOId(7)));
        assert!(v.covers(dc(1), TOId(1)));
        assert!(!v.covers(dc(1), TOId(8)));
        assert!(!v.covers(dc(0), TOId(3)));
        // TOId::NONE is covered by anything.
        assert!(v.covers(dc(5), TOId::NONE));
    }

    #[test]
    fn compare_detects_all_relations() {
        let a = VersionVector::from_entries(vec![TOId(1), TOId(1)]);
        let b = VersionVector::from_entries(vec![TOId(2), TOId(1)]);
        let c = VersionVector::from_entries(vec![TOId(1), TOId(2)]);
        assert_eq!(compare(&a, &a), CausalOrder::Equal);
        assert_eq!(compare(&a, &b), CausalOrder::Before);
        assert_eq!(compare(&b, &a), CausalOrder::After);
        assert_eq!(compare(&b, &c), CausalOrder::Concurrent);
    }

    #[test]
    fn total_sums_entries() {
        let v = VersionVector::from_entries(vec![TOId(2), TOId(7), TOId(1)]);
        assert_eq!(v.total(), 10);
    }

    #[test]
    fn display_is_compact() {
        let v = VersionVector::from_entries(vec![TOId(2), TOId(7)]);
        assert_eq!(v.to_string(), "[2,7]");
    }
}
