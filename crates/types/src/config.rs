//! Deployment configuration for FLStore and the Chariots pipeline.
//!
//! Configuration follows the builder pattern; every knob has a documented
//! default chosen to match the paper's evaluation setup (§7) at 1/10 scale
//! (see `DESIGN.md` §3 for the scaling rationale).

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// When a maintainer flushes **and fsyncs** its write-ahead log — the §5.2
/// durability point. Group commit (the default) syncs once per drained
/// request batch, amortizing the fsync the way BTRLog-style cloud logs do;
/// the other two policies exist for the `batching` bench ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalSyncPolicy {
    /// One flush+fsync per drained group-commit batch (default): every
    /// *acked* record is durable, at one fsync per batch instead of one per
    /// record.
    #[default]
    PerBatch,
    /// Flush+fsync after every record applied. The strictest (and slowest)
    /// policy; equivalent to `PerBatch` with a batch bound of 1.
    PerRecord,
    /// Never fsync on the serve path; frames are flushed to the OS per
    /// batch but the durability point is left to the OS / shutdown. Crash
    /// durability is NOT guaranteed — ablation and bulk-load use only.
    Never,
}

/// How the acting primary of a maintainer replica group reaches the
/// commit point for a group-commit batch.
///
/// `Serial` is the classic chain: apply → WAL fsync → push to every live
/// backup → ack, so append latency is *fsync + slowest-backup RPC* even
/// though the two are independent I/O. `PipelinedQuorum` (the default)
/// ships the batch to the live backups first, pays the primary's fsync
/// while those pushes are in flight, and acks as soon as a majority of
/// the group's replicas — counting the primary and each backup that
/// fsynced the batch — report it durable, cutting the ack latency to
/// *max(fsync, ship + backup fsync)*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitMode {
    /// Ack only after the primary fsynced **and** every live backup acked
    /// its replication push — today's semantics, kept as the equivalence
    /// oracle for the pipelined path.
    Serial,
    /// Ship to backups first, fsync in parallel, ack at a majority of
    /// durable copies (whichever combination of primary fsync and backup
    /// fsync acks gets there first).
    #[default]
    PipelinedQuorum,
}

/// Which substrate carries messages between the deployment's machines.
///
/// The protocol code is byte-for-byte identical on both; only the seam
/// under the stage handles changes (see `DESIGN.md` §15). `Simnet` (the
/// default) keeps every link an in-process channel — deterministic, and
/// the test/bench oracle. `Tcp` runs the intra-DC hops (client→batcher,
/// batcher→filter, filter→queue, and the FLStore client↔maintainer RPCs)
/// over real `TcpStream`s with length-prefixed CRC'd frames, so measured
/// numbers are hardware-limited instead of queueing-model-limited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportMode {
    /// In-process crossbeam channels behind the simnet substitution
    /// (deterministic; zero serialization).
    #[default]
    Simnet,
    /// Real TCP sockets on loopback/NICs: one serialization per batch,
    /// vectored writes, per-peer connection reuse with reconnect-on-error.
    Tcp,
}

/// Configuration of one datacenter's FLStore deployment (§5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FLStoreConfig {
    /// Number of log maintainers sharing the log ("a group of log
    /// maintainers that mutually handle exclusive ranges", §1).
    pub num_maintainers: usize,
    /// Records per round-robin round per maintainer; the paper's running
    /// example uses 1000 (§5.2, Fig. 4).
    pub batch_size: u64,
    /// Number of tag indexers (§5.3).
    pub num_indexers: usize,
    /// Interval between Head-of-Log gossip messages between maintainers
    /// (§5.4). Fixed-size messages, so the cost is throughput-independent.
    pub gossip_interval: Duration,
    /// Capacity bound of a maintainer's buffer of min-bound (explicit order)
    /// records, to "avoid a large backlog of partial logs" (§5.4).
    pub max_deferred_appends: usize,
    /// Replicas per maintainer group (`f + 1`): 1 disables replication,
    /// 2 (the default) survives one replica failure per group. Appends ack
    /// only after reaching every live replica of the owning group.
    pub replication_factor: usize,
    /// How often each replica reports liveness to the failure detector.
    pub heartbeat_interval: Duration,
    /// Silence after which the failure detector suspects a replica and the
    /// controller considers failing over its group.
    pub suspicion_timeout: Duration,
    /// Group-commit drain bound: after a maintainer node picks up one
    /// request it opportunistically drains further queued `Append`/`Store`
    /// requests into the same batch, up to this many *records*. 1 disables
    /// coalescing (every request is its own batch).
    pub max_batch_records: usize,
    /// Group-commit drain bound in payload bytes: a drained batch stops
    /// growing once the summed record bodies reach this bound.
    pub max_batch_bytes: usize,
    /// When the maintainer WAL is flushed+fsynced on the serve path.
    pub wal_sync_policy: WalSyncPolicy,
    /// How a replica group's primary reaches the commit point for a batch:
    /// the serial fsync-then-replicate chain, or the pipelined quorum
    /// commit that overlaps the two (the default).
    pub commit_mode: CommitMode,
    /// How long a client may serve `read_rule` from its cached Head of the
    /// Log before refreshing it with an RPC. The HL is monotonic, so a
    /// stale value is always a safe *lower* bound — the cache trades
    /// freshness (a record may become visible up to one TTL late) for one
    /// `head_of_log` round trip per rule. `Duration::ZERO` disables the
    /// cache.
    pub hl_cache_ttl: Duration,
    /// Capacity of the client-side entry cache (entries, keyed by `LId`).
    /// Committed positions below the Head of the Log are immutable, so the
    /// cache needs no invalidation. 0 disables it.
    pub read_cache_entries: usize,
    /// Rotation threshold of one maintainer WAL segment file in bytes.
    /// Smaller segments make compaction and checkpoint truncation more
    /// granular at the cost of more files.
    pub wal_segment_bytes: u64,
    /// Compaction threshold in thousandths: a sealed WAL segment whose
    /// estimated live ratio falls below `compact_live_frac_milli / 1000`
    /// is rewritten without its dead frames during a GC sweep. Stored in
    /// milli-units so the config stays `Eq`/hashable; use
    /// [`FLStoreConfig::compact_live_frac`] to set it as a fraction.
    pub compact_live_frac_milli: u32,
    /// How often a maintainer checkpoints its durable state so recovery
    /// can replay only the WAL suffix written since. `Duration::ZERO`
    /// disables checkpointing (recovery replays the whole log).
    pub checkpoint_interval: Duration,
    /// Substrate carrying client↔maintainer RPCs: in-process channels
    /// (default) or real TCP sockets. Replication, gossip, and control
    /// traffic stay in-process either way (`DESIGN.md` §15).
    #[serde(default)]
    pub transport: TransportMode,
}

impl Default for FLStoreConfig {
    fn default() -> Self {
        FLStoreConfig {
            num_maintainers: 3,
            batch_size: 1000,
            num_indexers: 1,
            gossip_interval: Duration::from_millis(5),
            max_deferred_appends: 65_536,
            replication_factor: 2,
            heartbeat_interval: Duration::from_millis(5),
            suspicion_timeout: Duration::from_millis(150),
            max_batch_records: 512,
            max_batch_bytes: 1 << 20,
            wal_sync_policy: WalSyncPolicy::default(),
            commit_mode: CommitMode::default(),
            hl_cache_ttl: Duration::from_millis(5),
            read_cache_entries: 4096,
            wal_segment_bytes: 8 * 1024 * 1024,
            compact_live_frac_milli: 500,
            checkpoint_interval: Duration::from_secs(1),
            transport: TransportMode::default(),
        }
    }
}

impl FLStoreConfig {
    /// Starts from defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of log maintainers.
    pub fn maintainers(mut self, n: usize) -> Self {
        self.num_maintainers = n;
        self
    }

    /// Sets the round-robin batch size.
    pub fn batch_size(mut self, n: u64) -> Self {
        self.batch_size = n;
        self
    }

    /// Sets the number of indexers.
    pub fn indexers(mut self, n: usize) -> Self {
        self.num_indexers = n;
        self
    }

    /// Sets the HL gossip interval.
    pub fn gossip_interval(mut self, d: Duration) -> Self {
        self.gossip_interval = d;
        self
    }

    /// Sets the replication factor (replicas per maintainer group; 1
    /// disables replication).
    pub fn replication(mut self, n: usize) -> Self {
        self.replication_factor = n;
        self
    }

    /// Sets the replica heartbeat interval.
    pub fn heartbeat_interval(mut self, d: Duration) -> Self {
        self.heartbeat_interval = d;
        self
    }

    /// Sets the failure-detector suspicion timeout.
    pub fn suspicion_timeout(mut self, d: Duration) -> Self {
        self.suspicion_timeout = d;
        self
    }

    /// Sets the group-commit drain bound in records (1 disables coalescing).
    pub fn max_batch_records(mut self, n: usize) -> Self {
        self.max_batch_records = n;
        self
    }

    /// Sets the group-commit drain bound in payload bytes.
    pub fn max_batch_bytes(mut self, n: usize) -> Self {
        self.max_batch_bytes = n;
        self
    }

    /// Sets the WAL sync policy for the maintainer serve path.
    pub fn wal_sync_policy(mut self, p: WalSyncPolicy) -> Self {
        self.wal_sync_policy = p;
        self
    }

    /// Sets the replica-group commit mode (serial chain vs pipelined
    /// quorum).
    pub fn commit_mode(mut self, m: CommitMode) -> Self {
        self.commit_mode = m;
        self
    }

    /// Sets the client Head-of-Log cache TTL (`Duration::ZERO` disables).
    pub fn hl_cache_ttl(mut self, d: Duration) -> Self {
        self.hl_cache_ttl = d;
        self
    }

    /// Sets the client entry-cache capacity in entries (0 disables).
    pub fn read_cache_entries(mut self, n: usize) -> Self {
        self.read_cache_entries = n;
        self
    }

    /// Sets the WAL segment rotation threshold in bytes.
    pub fn wal_segment_bytes(mut self, n: u64) -> Self {
        self.wal_segment_bytes = n;
        self
    }

    /// Sets the compaction live-ratio threshold as a fraction in `0.0..=1.0`
    /// (stored internally in thousandths). `0.0` disables compaction
    /// rewrites (fully-dead segments are still deleted).
    pub fn compact_live_frac(mut self, frac: f64) -> Self {
        self.compact_live_frac_milli = (frac.clamp(0.0, 1.0) * 1000.0).round() as u32;
        self
    }

    /// Sets the maintainer checkpoint interval (`Duration::ZERO` disables).
    pub fn checkpoint_interval(mut self, d: Duration) -> Self {
        self.checkpoint_interval = d;
        self
    }

    /// Sets the transport substrate for client↔maintainer RPCs.
    pub fn transport(mut self, t: TransportMode) -> Self {
        self.transport = t;
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_maintainers == 0 {
            return Err("num_maintainers must be at least 1".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1".into());
        }
        if self.num_indexers == 0 {
            return Err("num_indexers must be at least 1".into());
        }
        if self.replication_factor == 0 {
            return Err("replication_factor must be at least 1".into());
        }
        if self.suspicion_timeout < self.heartbeat_interval {
            return Err("suspicion_timeout must be at least the heartbeat interval".into());
        }
        if self.max_batch_records == 0 {
            return Err("max_batch_records must be at least 1".into());
        }
        if self.max_batch_bytes == 0 {
            return Err("max_batch_bytes must be at least 1".into());
        }
        if self.wal_segment_bytes == 0 {
            return Err("wal_segment_bytes must be at least 1".into());
        }
        if self.compact_live_frac_milli > 1000 {
            return Err("compact_live_frac_milli must be at most 1000 (a fraction)".into());
        }
        Ok(())
    }
}

/// Per-stage machine counts for one datacenter's Chariots pipeline (§6.2).
///
/// "Each stage can consist of more than one machine, e.g., five machines
/// acting as Queues and four acting as Batchers."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCounts {
    /// Machines receiving records propagated from other datacenters.
    pub receivers: usize,
    /// Machines batching incoming records toward filters.
    pub batchers: usize,
    /// Machines enforcing exactly-once record incorporation.
    pub filters: usize,
    /// Machines assigning `LId`s under the token protocol.
    pub queues: usize,
    /// Machines propagating local records to other datacenters.
    pub senders: usize,
}

impl Default for StageCounts {
    fn default() -> Self {
        StageCounts {
            receivers: 1,
            batchers: 1,
            filters: 1,
            queues: 1,
            senders: 1,
        }
    }
}

impl StageCounts {
    /// One machine per stage — the paper's basic deployment (Table 2).
    pub fn uniform(n: usize) -> Self {
        StageCounts {
            receivers: n,
            batchers: n,
            filters: n,
            queues: n,
            senders: n,
        }
    }
}

/// Configuration of one Chariots datacenter instance (§6.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChariotsConfig {
    /// Number of datacenters in the deployment (sizes the ATable and all
    /// version vectors).
    pub num_datacenters: usize,
    /// Per-stage machine counts.
    pub stages: StageCounts,
    /// FLStore deployment backing the Log-maintainers stage.
    pub flstore: FLStoreConfig,
    /// Records a batcher accumulates per destination filter before flushing
    /// (§6.2: "once a buffer size exceeds a threshold, the records are
    /// sent").
    pub batcher_flush_threshold: usize,
    /// Maximum time records may sit in a batcher buffer before a flush is
    /// forced, bounding append latency at low load.
    pub batcher_flush_interval: Duration,
    /// Whether queues forward deferred (dependency-blocked) records along
    /// with the token, trading network I/O for append latency (§6.2: "it is
    /// a design decision"). Ablation A3.
    pub token_carries_deferred: bool,
    /// Heartbeat floor of the senders stage (§6.1 *Propagate*): with delta
    /// shipping on, senders run a round as soon as new local records or an
    /// ATable update arrives, and this interval only bounds how long a
    /// quiet sender may go without gossiping its applied cut. With delta
    /// shipping off it is the fixed round interval, as in the abstract
    /// solution.
    pub propagation_interval: Duration,
    /// Cursor-based delta shipping for the senders stage: a healthy round
    /// ships only records beyond a per-peer send cursor instead of
    /// re-offering the whole unacknowledged window, and rounds are
    /// event-driven. `false` restores the full re-offer policy (the
    /// abstract solution's *Propagate*, kept for the `geo` bench baseline).
    pub sender_delta_shipping: bool,
    /// How long a peer's applied cut may stall — with offered records still
    /// unacknowledged — before a sender falls back to re-offering from the
    /// ATable-known cut. The healing path for dropped chunks and healed
    /// partitions; must comfortably exceed the WAN round trip plus one
    /// propagation interval, or healthy peers get spurious retransmissions.
    pub retransmit_timeout: Duration,
    /// Byte bound of one outgoing propagation chunk (summed record wire
    /// sizes, alongside the record-count bound), so a catch-up burst after
    /// a partition heals cannot monopolize the WAN link.
    pub max_propagation_bytes: usize,
    /// Cap of a sender's retransmission cache in records. A crashed or
    /// partitioned peer pins the cache's pruning bound; beyond this cap the
    /// oldest records are evicted and re-hydrated from the maintainers via
    /// the scan path if the stale peer recovers.
    pub sender_cache_max_records: usize,
    /// User-specified spatial GC rule: keep at most this many records
    /// per datacenter log beyond the replication-safe prefix. `None`
    /// disables user GC (records are kept indefinitely, §6.1).
    pub gc_keep_records: Option<u64>,
    /// Observability: stamp a [`TraceId`](crate::TraceId) on every N-th
    /// appended record so the pipeline stages record per-stage enter/exit
    /// times for it. `0` disables tracing entirely; `1` traces every
    /// record (tests/debugging).
    pub trace_sample_every: u64,
    /// Substrate carrying the intra-DC pipeline hops (client→batcher,
    /// batcher→filter, filter→queue): in-process channels (default) or
    /// real TCP sockets. WAN propagation and the token ring stay on the
    /// simnet substrate either way (`DESIGN.md` §15). Set via
    /// [`ChariotsConfig::transport`], which also switches the embedded
    /// FLStore's RPC transport so the whole datacenter moves together.
    #[serde(default)]
    pub transport: TransportMode,
}

impl Default for ChariotsConfig {
    fn default() -> Self {
        ChariotsConfig {
            num_datacenters: 2,
            stages: StageCounts::default(),
            flstore: FLStoreConfig::default(),
            batcher_flush_threshold: 64,
            batcher_flush_interval: Duration::from_millis(2),
            token_carries_deferred: true,
            propagation_interval: Duration::from_millis(10),
            sender_delta_shipping: true,
            retransmit_timeout: Duration::from_millis(200),
            max_propagation_bytes: 1 << 20,
            sender_cache_max_records: 131_072,
            gc_keep_records: None,
            trace_sample_every: 64,
            transport: TransportMode::default(),
        }
    }
}

impl ChariotsConfig {
    /// Starts from defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of datacenters.
    pub fn datacenters(mut self, n: usize) -> Self {
        self.num_datacenters = n;
        self
    }

    /// Sets per-stage machine counts.
    pub fn stages(mut self, stages: StageCounts) -> Self {
        self.stages = stages;
        self
    }

    /// Sets the FLStore configuration.
    pub fn flstore(mut self, flstore: FLStoreConfig) -> Self {
        self.flstore = flstore;
        self
    }

    /// Sets the batcher flush threshold.
    pub fn batcher_flush_threshold(mut self, n: usize) -> Self {
        self.batcher_flush_threshold = n;
        self
    }

    /// Sets whether the token carries deferred records (ablation A3).
    pub fn token_carries_deferred(mut self, yes: bool) -> Self {
        self.token_carries_deferred = yes;
        self
    }

    /// Sets the propagation interval (the heartbeat floor under delta
    /// shipping).
    pub fn propagation_interval(mut self, d: Duration) -> Self {
        self.propagation_interval = d;
        self
    }

    /// Enables or disables sender delta shipping (`false` restores the
    /// full re-offer baseline).
    pub fn sender_delta_shipping(mut self, yes: bool) -> Self {
        self.sender_delta_shipping = yes;
        self
    }

    /// Sets the stalled-peer retransmission timeout.
    pub fn retransmit_timeout(mut self, d: Duration) -> Self {
        self.retransmit_timeout = d;
        self
    }

    /// Sets the byte bound of one propagation chunk.
    pub fn max_propagation_bytes(mut self, n: usize) -> Self {
        self.max_propagation_bytes = n;
        self
    }

    /// Sets the sender retransmission-cache cap in records.
    pub fn sender_cache_max_records(mut self, n: usize) -> Self {
        self.sender_cache_max_records = n;
        self
    }

    /// Enables the spatial GC rule.
    pub fn gc_keep_records(mut self, n: u64) -> Self {
        self.gc_keep_records = Some(n);
        self
    }

    /// Sets the record-trace sampling period (0 disables tracing).
    pub fn trace_sample_every(mut self, n: u64) -> Self {
        self.trace_sample_every = n;
        self
    }

    /// Sets the transport substrate for the whole datacenter: the pipeline
    /// hops *and* the embedded FLStore's client↔maintainer RPCs.
    pub fn transport(mut self, t: TransportMode) -> Self {
        self.transport = t;
        self.flstore.transport = t;
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_datacenters == 0 {
            return Err("num_datacenters must be at least 1".into());
        }
        let s = &self.stages;
        if s.batchers == 0 || s.filters == 0 || s.queues == 0 {
            return Err("batchers, filters, and queues must each have at least 1 machine".into());
        }
        if self.num_datacenters > 1 && (s.receivers == 0 || s.senders == 0) {
            return Err("multi-datacenter deployments need receivers and senders".into());
        }
        if self.batcher_flush_threshold == 0 {
            return Err("batcher_flush_threshold must be at least 1".into());
        }
        if self.retransmit_timeout.is_zero() {
            return Err("retransmit_timeout must be positive".into());
        }
        if self.max_propagation_bytes == 0 {
            return Err("max_propagation_bytes must be at least 1".into());
        }
        if self.sender_cache_max_records == 0 {
            return Err("sender_cache_max_records must be at least 1".into());
        }
        self.flstore.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(FLStoreConfig::default().validate().is_ok());
        assert!(ChariotsConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let cfg = ChariotsConfig::new()
            .datacenters(3)
            .stages(StageCounts::uniform(2))
            .flstore(FLStoreConfig::new().maintainers(4).batch_size(100))
            .batcher_flush_threshold(32)
            .token_carries_deferred(false)
            .gc_keep_records(10_000)
            .trace_sample_every(8);
        assert_eq!(cfg.num_datacenters, 3);
        assert_eq!(cfg.stages.queues, 2);
        assert_eq!(cfg.flstore.num_maintainers, 4);
        assert_eq!(cfg.flstore.batch_size, 100);
        assert!(!cfg.token_carries_deferred);
        assert_eq!(cfg.gc_keep_records, Some(10_000));
        assert_eq!(cfg.trace_sample_every, 8);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_maintainers_rejected() {
        let cfg = FLStoreConfig::new().maintainers(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_batch_size_rejected() {
        let cfg = FLStoreConfig::new().batch_size(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn replication_knobs_validate() {
        assert!(FLStoreConfig::new().replication(0).validate().is_err());
        assert!(FLStoreConfig::new().replication(3).validate().is_ok());
        let cfg = FLStoreConfig::new()
            .heartbeat_interval(Duration::from_millis(50))
            .suspicion_timeout(Duration::from_millis(10));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn batching_knobs_validate() {
        assert!(FLStoreConfig::new()
            .max_batch_records(0)
            .validate()
            .is_err());
        assert!(FLStoreConfig::new().max_batch_bytes(0).validate().is_err());
        let cfg = FLStoreConfig::new()
            .max_batch_records(64)
            .max_batch_bytes(4096)
            .wal_sync_policy(WalSyncPolicy::Never);
        assert_eq!(cfg.max_batch_records, 64);
        assert_eq!(cfg.max_batch_bytes, 4096);
        assert_eq!(cfg.wal_sync_policy, WalSyncPolicy::Never);
        assert!(cfg.validate().is_ok());
        assert_eq!(
            FLStoreConfig::default().wal_sync_policy,
            WalSyncPolicy::PerBatch
        );
    }

    #[test]
    fn commit_mode_defaults_to_pipelined_quorum() {
        assert_eq!(
            FLStoreConfig::default().commit_mode,
            CommitMode::PipelinedQuorum
        );
        let cfg = FLStoreConfig::new().commit_mode(CommitMode::Serial);
        assert_eq!(cfg.commit_mode, CommitMode::Serial);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn read_cache_knobs_build_and_disable() {
        let cfg = FLStoreConfig::new()
            .hl_cache_ttl(Duration::ZERO)
            .read_cache_entries(0);
        assert_eq!(cfg.hl_cache_ttl, Duration::ZERO);
        assert_eq!(cfg.read_cache_entries, 0);
        // Zero means "disabled", not "invalid".
        assert!(cfg.validate().is_ok());
        assert!(FLStoreConfig::default().hl_cache_ttl > Duration::ZERO);
        assert!(FLStoreConfig::default().read_cache_entries > 0);
    }

    #[test]
    fn storage_knobs_validate() {
        let cfg = FLStoreConfig::default();
        assert_eq!(cfg.wal_segment_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.compact_live_frac_milli, 500);
        assert!(cfg.checkpoint_interval > Duration::ZERO);
        let cfg = FLStoreConfig::new()
            .wal_segment_bytes(1 << 16)
            .compact_live_frac(0.25)
            .checkpoint_interval(Duration::from_millis(200));
        assert_eq!(cfg.wal_segment_bytes, 1 << 16);
        assert_eq!(cfg.compact_live_frac_milli, 250);
        assert!(cfg.validate().is_ok());
        // Fractions clamp into range instead of overflowing the milli rep.
        assert_eq!(
            FLStoreConfig::new()
                .compact_live_frac(7.0)
                .compact_live_frac_milli,
            1000
        );
        assert!(FLStoreConfig::new()
            .wal_segment_bytes(0)
            .validate()
            .is_err());
        let mut cfg = FLStoreConfig::new();
        cfg.compact_live_frac_milli = 1001;
        assert!(cfg.validate().is_err());
        // Zero checkpoint interval means "disabled", not "invalid".
        assert!(FLStoreConfig::new()
            .checkpoint_interval(Duration::ZERO)
            .validate()
            .is_ok());
    }

    #[test]
    fn multi_dc_requires_senders_and_receivers() {
        let mut cfg = ChariotsConfig::new().datacenters(2);
        cfg.stages.senders = 0;
        assert!(cfg.validate().is_err());
        // A single-datacenter deployment does not need senders.
        cfg.num_datacenters = 1;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn propagation_knobs_validate() {
        let cfg = ChariotsConfig::new();
        assert!(cfg.sender_delta_shipping, "delta shipping defaults on");
        assert!(cfg.retransmit_timeout > cfg.propagation_interval);
        let mut cfg = ChariotsConfig::new()
            .sender_delta_shipping(false)
            .retransmit_timeout(Duration::from_millis(50))
            .max_propagation_bytes(4096)
            .sender_cache_max_records(1024);
        assert!(!cfg.sender_delta_shipping);
        assert!(cfg.validate().is_ok());
        cfg.retransmit_timeout = Duration::ZERO;
        assert!(cfg.validate().is_err());
        cfg.retransmit_timeout = Duration::from_millis(50);
        cfg.max_propagation_bytes = 0;
        assert!(cfg.validate().is_err());
        cfg.max_propagation_bytes = 4096;
        cfg.sender_cache_max_records = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn transport_defaults_to_simnet_and_switches_both_layers() {
        assert_eq!(ChariotsConfig::default().transport, TransportMode::Simnet);
        assert_eq!(FLStoreConfig::default().transport, TransportMode::Simnet);
        let cfg = ChariotsConfig::new().transport(TransportMode::Tcp);
        assert_eq!(cfg.transport, TransportMode::Tcp);
        assert_eq!(
            cfg.flstore.transport,
            TransportMode::Tcp,
            "the datacenter-level knob moves the embedded FLStore too"
        );
        assert!(cfg.validate().is_ok());
        // Configs persisted before the knob existed still deserialize.
        let mut json: serde_json::Value = serde_json::to_value(FLStoreConfig::default()).unwrap();
        json.as_object_mut().unwrap().remove("transport");
        let legacy: FLStoreConfig = serde_json::from_value(json).unwrap();
        assert_eq!(legacy.transport, TransportMode::Simnet);
    }

    #[test]
    fn zero_core_stage_rejected() {
        let mut cfg = ChariotsConfig::new();
        cfg.stages.filters = 0;
        assert!(cfg.validate().is_err());
    }
}
