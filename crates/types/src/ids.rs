//! Strongly-typed identifiers used throughout the Chariots stack.
//!
//! The paper distinguishes two orderings for every record (§3):
//!
//! * the **Log Id** ([`LId`]) — the record's position in *one datacenter's*
//!   copy of the shared log; copies of the same record at different
//!   datacenters generally have different `LId`s, and
//! * the **Total-Order Id** ([`TOId`]) — the record's position among records
//!   created at its *host* datacenter; all copies of a record share the same
//!   `TOId`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one datacenter (one full replica of the shared log).
///
/// Datacenter ids are small dense integers assigned at deployment time; they
/// index rows and columns of the awareness table and entries of
/// [`VersionVector`](crate::causality::VersionVector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DatacenterId(pub u16);

impl DatacenterId {
    /// Returns the id as a `usize` index (for vector-indexed structures).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DatacenterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Datacenters print as letters (A, B, C, …) matching the paper's
        // figures, falling back to `DC<n>` past 26.
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0 as u8) as char)
        } else {
            write!(f, "DC{}", self.0)
        }
    }
}

/// Position of a record copy within one datacenter's shared log.
///
/// `LId`s are dense and zero-based: the first record of a datacenter's log
/// has `LId(0)` and the log never has permanent gaps. (The paper's figures
/// display 1-based positions; this implementation is 0-based so that `LId`s
/// double as indexes into the round-robin maintainer ranges.)
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LId(pub u64);

impl LId {
    /// The first position in a log.
    pub const ZERO: LId = LId(0);

    /// The position immediately after `self`.
    #[inline]
    pub fn next(self) -> LId {
        LId(self.0 + 1)
    }

    /// Returns the id as a `u64`.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Total order of a record among records from the same host datacenter.
///
/// `TOId`s are 1-based, matching the paper ("the first record of each node
/// has a TOId of 1", §6.1). The value `0` therefore means *no records yet*,
/// which is exactly the initial state of awareness tables and version
/// vectors; [`TOId::NONE`] names that sentinel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TOId(pub u64);

impl TOId {
    /// "No records known" — the state before the first record (TOId 1).
    pub const NONE: TOId = TOId(0);
    /// The TOId of the first record created at a datacenter.
    pub const FIRST: TOId = TOId(1);

    /// The TOId following `self`.
    #[inline]
    pub fn next(self) -> TOId {
        TOId(self.0 + 1)
    }

    /// The TOId preceding `self`, or [`TOId::NONE`] for the first.
    #[inline]
    pub fn prev(self) -> TOId {
        TOId(self.0.saturating_sub(1))
    }

    /// Whether this is the [`TOId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Returns the id as a `u64`.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TOId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Globally unique identity of a record: the datacenter that created it plus
/// its total-order id there.
///
/// Every copy of a record, at every datacenter, carries the same `RecordId`;
/// the filters stage uses it to enforce exactly-once incorporation (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId {
    /// Datacenter whose application client appended the record.
    pub host: DatacenterId,
    /// Total order of the record among `host`'s records.
    pub toid: TOId,
}

impl RecordId {
    /// Creates a record id.
    #[inline]
    pub fn new(host: DatacenterId, toid: TOId) -> Self {
        RecordId { host, toid }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.host, self.toid.0)
    }
}

/// Identifies one log maintainer within a datacenter's FLStore deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MaintainerId(pub u16);

impl MaintainerId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MaintainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Generation number of a maintainer replica group.
///
/// Every primary promotion bumps the group's generation; requests stamped
/// with an older generation are *fenced* (rejected), so a deposed primary
/// that did not notice its demotion cannot ack writes the new primary will
/// never see.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Generation(pub u64);

impl Generation {
    /// The generation a replica group starts in.
    pub const INITIAL: Generation = Generation(0);

    /// The generation following `self`.
    #[inline]
    pub fn next(self) -> Generation {
        Generation(self.0 + 1)
    }

    /// Returns the generation as a `u64`.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifies an application-client session within one datacenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// An epoch number for live-elasticity reassignment (§6.3).
///
/// Every change to the maintainer or filter championing assignment opens a
/// new epoch; the epoch journal maps log ranges to the assignment that was in
/// force when they were written.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Epoch(pub u32);

impl Epoch {
    /// The deployment's initial epoch.
    pub const INITIAL: Epoch = Epoch(0);

    /// The epoch following `self`.
    #[inline]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// Identity of one sampled record trace (observability, not protocol).
///
/// A `TraceId` is stamped on a sampled subset of records as they enter the
/// pipeline; each stage then records enter/exit timestamps against it so
/// the bench can break end-to-end latency down per stage. Trace ids never
/// cross datacenters — a receiver re-samples incoming records — and they
/// are excluded from record equality and wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Returns the id as a `u64`.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tr{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datacenter_display_uses_letters() {
        assert_eq!(DatacenterId(0).to_string(), "A");
        assert_eq!(DatacenterId(2).to_string(), "C");
        assert_eq!(DatacenterId(25).to_string(), "Z");
        assert_eq!(DatacenterId(26).to_string(), "DC26");
    }

    #[test]
    fn toid_sentinel_and_successors() {
        assert!(TOId::NONE.is_none());
        assert!(!TOId::FIRST.is_none());
        assert_eq!(TOId::NONE.next(), TOId::FIRST);
        assert_eq!(TOId::FIRST.prev(), TOId::NONE);
        assert_eq!(TOId::NONE.prev(), TOId::NONE);
        assert_eq!(TOId(41).next(), TOId(42));
    }

    #[test]
    fn lid_is_zero_based_and_dense() {
        assert_eq!(LId::ZERO.as_u64(), 0);
        assert_eq!(LId::ZERO.next(), LId(1));
        assert!(LId(3) < LId(4));
    }

    #[test]
    fn record_id_display_matches_paper_notation() {
        let id = RecordId::new(DatacenterId(1), TOId(2));
        assert_eq!(id.to_string(), "<B,2>");
    }

    #[test]
    fn record_id_ordering_is_host_then_toid() {
        let a1 = RecordId::new(DatacenterId(0), TOId(9));
        let b1 = RecordId::new(DatacenterId(1), TOId(1));
        assert!(a1 < b1);
        let b2 = RecordId::new(DatacenterId(1), TOId(2));
        assert!(b1 < b2);
    }

    #[test]
    fn generation_advances_and_orders() {
        assert_eq!(Generation::INITIAL.next(), Generation(1));
        assert!(Generation(1) < Generation(2));
        assert_eq!(Generation(3).to_string(), "g3");
    }

    #[test]
    fn epoch_advances() {
        assert_eq!(Epoch::INITIAL.next(), Epoch(1));
        assert_eq!(Epoch(7).next().to_string(), "E8");
    }

    #[test]
    fn ids_roundtrip_serde() {
        let id = RecordId::new(DatacenterId(3), TOId(77));
        let json = serde_json::to_string(&id).unwrap();
        let back: RecordId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }
}
