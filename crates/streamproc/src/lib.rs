//! # chariots-streamproc
//!
//! Multi-datacenter event processing over the Chariots shared log (§4.2 of
//! *Chariots*, EDBT 2015).
//!
//! "Event processing applications consist of publishers and readers.
//! Publishing an event is as easy as performing an append to the log.
//! Readers then read the events from the log maintainers. … readers can
//! read from different log maintainers [which distributes] the analysis
//! work without the need of a centralized dispatcher."
//!
//! The log provides what stream pipelines struggle to build themselves:
//!
//! * **Exactly-once semantics** — a reader's position cursor, checkpointed
//!   *into the log itself*, guarantees each event is processed once even
//!   across reader crashes.
//! * **Multi-datacenter streams** — events published at any datacenter
//!   appear in every replica's log in a causally consistent order, so a
//!   Photon-style join of streams from different datacenters (the paper's
//!   motivating example) is just a log scan.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use chariots_core::ChariotsClient;
use chariots_types::{
    Condition, DatacenterId, Entry, LId, ReadRule, Result, TOId, Tag, TagSet, TagValue,
    ValuePredicate,
};
use serde::{Deserialize, Serialize};

/// Tag key carrying the topic name.
pub const TOPIC_TAG: &str = "stream.topic";
/// Tag key carrying the (optional) join key.
pub const KEY_TAG: &str = "stream.key";
/// Tag key marking reader checkpoints.
pub const CKPT_TAG: &str = "stream.ckpt";

/// One event as delivered to a reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The topic it was published under.
    pub topic: String,
    /// The join/partition key, if any.
    pub key: Option<String>,
    /// The payload.
    pub body: Vec<u8>,
    /// Which datacenter published it.
    pub publisher: DatacenterId,
    /// Publisher-side total order.
    pub toid: TOId,
    /// Position in this datacenter's log.
    pub lid: LId,
}

/// Publishes events by appending tagged records.
pub struct Publisher {
    log: ChariotsClient,
}

impl Publisher {
    /// Wraps a Chariots client session.
    pub fn new(log: ChariotsClient) -> Self {
        Publisher { log }
    }

    /// Publishes an event to `topic`.
    pub fn publish(&mut self, topic: &str, body: impl Into<Vec<u8>>) -> Result<LId> {
        self.publish_inner(topic, None, body.into())
    }

    /// Publishes a keyed event (joins and partitioning use the key).
    pub fn publish_keyed(
        &mut self,
        topic: &str,
        key: &str,
        body: impl Into<Vec<u8>>,
    ) -> Result<LId> {
        self.publish_inner(topic, Some(key), body.into())
    }

    fn publish_inner(&mut self, topic: &str, key: Option<&str>, body: Vec<u8>) -> Result<LId> {
        let mut tags = TagSet::new().with(Tag::with_value(TOPIC_TAG, topic));
        if let Some(key) = key {
            tags.push(Tag::with_value(KEY_TAG, key));
        }
        let (_toid, lid) = self.log.append(tags, body)?;
        Ok(lid)
    }
}

/// Checkpoint payload: the reader's resume cursor.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Checkpoint {
    cursor: u64,
}

/// A cursor-based, exactly-once reader of one topic.
///
/// `poll` delivers every matching event in log order exactly once. The
/// cursor lives in memory; [`checkpoint`](Reader::checkpoint) appends it to
/// the log so a restarted reader ([`recover`](Reader::recover)) resumes
/// where it left off — at-least-once delivery of the tail since the last
/// checkpoint, never re-delivering anything before it.
pub struct Reader {
    log: ChariotsClient,
    /// Stable identity for checkpointing.
    id: String,
    topic: String,
    cursor: LId,
    /// Partitioned reading: process only positions with
    /// `lid % stride == offset` (readers can share a topic without a
    /// dispatcher).
    stride: u64,
    offset: u64,
}

impl Reader {
    /// A reader of `topic` starting from the beginning of the log.
    pub fn new(log: ChariotsClient, id: impl Into<String>, topic: impl Into<String>) -> Self {
        Reader {
            log,
            id: id.into(),
            topic: topic.into(),
            cursor: LId::ZERO,
            stride: 1,
            offset: 0,
        }
    }

    /// Restricts this reader to its share of a partitioned reader group:
    /// member `offset` of `stride` processes positions ≡ `offset` (mod
    /// `stride`).
    pub fn partitioned(mut self, stride: u64, offset: u64) -> Self {
        assert!(stride > 0 && offset < stride);
        self.stride = stride;
        self.offset = offset;
        self
    }

    /// The current cursor.
    pub fn cursor(&self) -> LId {
        self.cursor
    }

    /// Delivers the next events, at most `max`, advancing the cursor.
    /// Events are delivered in log order, each exactly once per reader.
    pub fn poll(&mut self, max: usize) -> Result<Vec<Event>> {
        let hl = self.log.head_of_log()?;
        let mut out = Vec::new();
        while self.cursor < hl && out.len() < max {
            let lid = self.cursor;
            self.cursor = self.cursor.next();
            if self.stride > 1 && lid.0 % self.stride != self.offset {
                continue;
            }
            let entry = match self.log.read(lid) {
                Ok(e) => e,
                Err(chariots_types::ChariotsError::GarbageCollected(_)) => continue,
                Err(e) => return Err(e),
            };
            if let Some(event) = to_event(&entry, &self.topic) {
                out.push(event);
            }
        }
        Ok(out)
    }

    /// Appends a checkpoint record carrying the cursor.
    pub fn checkpoint(&mut self) -> Result<LId> {
        let tags = TagSet::new().with(Tag::with_value(CKPT_TAG, self.id.as_str()));
        let body = serde_json::to_vec(&Checkpoint {
            cursor: self.cursor.0,
        })
        .expect("checkpoint serializes");
        let (_toid, lid) = self.log.append(tags, body)?;
        Ok(lid)
    }

    /// Rebuilds a reader from its most recent checkpoint in the log (a
    /// crashed reader restarting). Without one, it starts from the
    /// beginning.
    pub fn recover(
        mut log: ChariotsClient,
        id: impl Into<String>,
        topic: impl Into<String>,
    ) -> Result<Self> {
        let id = id.into();
        let rule = ReadRule::where_(Condition::TagValue(
            CKPT_TAG.into(),
            ValuePredicate::Eq(TagValue::Str(id.clone())),
        ))
        .most_recent(1);
        let hits = log.read_rule(&rule)?;
        let cursor = hits
            .first()
            .and_then(|e| serde_json::from_slice::<Checkpoint>(&e.record.body).ok())
            .map(|c| LId(c.cursor))
            .unwrap_or(LId::ZERO);
        let mut reader = Reader::new(log, id, topic);
        reader.cursor = cursor;
        Ok(reader)
    }
}

fn to_event(entry: &Entry, topic: &str) -> Option<Event> {
    let record = &entry.record;
    let topic_tag = record.tags.get(TOPIC_TAG)?;
    let Some(TagValue::Str(t)) = &topic_tag.value else {
        return None;
    };
    if t != topic {
        return None;
    }
    let key = record.tags.get(KEY_TAG).and_then(|tag| match &tag.value {
        Some(TagValue::Str(k)) => Some(k.clone()),
        _ => None,
    });
    Some(Event {
        topic: t.clone(),
        key,
        body: record.body.to_vec(),
        publisher: record.host(),
        toid: record.toid(),
        lid: entry.lid,
    })
}

/// A group of partitioned readers managed as one logical consumer:
/// "readers can read from different log maintainers … without the need of
/// a centralized dispatcher" (§4.2). Each member owns the positions
/// `≡ its index (mod group size)`; the group's poll drains all members and
/// merges their events back into log order.
pub struct ReaderGroup {
    members: Vec<Reader>,
}

impl ReaderGroup {
    /// Builds a group of `size` partitioned readers over `topic`, with
    /// sessions produced by `make_session` (one per member — each reader
    /// is its own machine).
    pub fn new(
        size: u64,
        id_prefix: &str,
        topic: &str,
        mut make_session: impl FnMut() -> ChariotsClient,
    ) -> Self {
        assert!(size > 0);
        ReaderGroup {
            members: (0..size)
                .map(|i| {
                    Reader::new(make_session(), format!("{id_prefix}-{i}"), topic)
                        .partitioned(size, i)
                })
                .collect(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Polls every member and returns the union of their events, merged
    /// into log (`LId`) order.
    pub fn poll(&mut self, max_per_member: usize) -> Result<Vec<Event>> {
        let mut out = Vec::new();
        for m in &mut self.members {
            out.extend(m.poll(max_per_member)?);
        }
        out.sort_by_key(|e| e.lid);
        Ok(out)
    }

    /// Checkpoints every member.
    pub fn checkpoint(&mut self) -> Result<()> {
        for m in &mut self.members {
            m.checkpoint()?;
        }
        Ok(())
    }

    /// Access the members (e.g. for per-member recovery).
    pub fn members_mut(&mut self) -> &mut [Reader] {
        &mut self.members
    }
}

/// A joined pair from two streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Joined {
    /// The join key.
    pub key: String,
    /// The event from the left stream.
    pub left: Event,
    /// The event from the right stream.
    pub right: Event,
}

/// A Photon-style streaming join of two topics on [`KEY_TAG`] — "joins
/// streams of clicks from different datacenters" (§1). Unmatched events
/// are buffered by key; each pair is emitted exactly once, in log order of
/// the later event.
pub struct Joiner {
    log: ChariotsClient,
    left_topic: String,
    right_topic: String,
    cursor: LId,
    pending_left: BTreeMap<String, Vec<Event>>,
    pending_right: BTreeMap<String, Vec<Event>>,
    /// Join window in log positions: an unmatched event is evicted once
    /// the cursor has advanced this far past it (Photon's windowed join —
    /// without a window, skew would grow the buffers without bound).
    window: Option<u64>,
    evicted: u64,
}

impl Joiner {
    /// A joiner over `left_topic ⋈ right_topic`.
    pub fn new(
        log: ChariotsClient,
        left_topic: impl Into<String>,
        right_topic: impl Into<String>,
    ) -> Self {
        Joiner {
            log,
            left_topic: left_topic.into(),
            right_topic: right_topic.into(),
            cursor: LId::ZERO,
            pending_left: BTreeMap::new(),
            pending_right: BTreeMap::new(),
            window: None,
            evicted: 0,
        }
    }

    /// Bounds the join window to `positions` log positions: unmatched
    /// events older than that are evicted (and counted).
    pub fn with_window(mut self, positions: u64) -> Self {
        assert!(positions > 0);
        self.window = Some(positions);
        self
    }

    /// Unmatched events evicted by the window so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    fn evict_expired(&mut self) {
        let Some(window) = self.window else { return };
        let horizon = self.cursor.0.saturating_sub(window);
        let mut evicted = 0u64;
        for pending in [&mut self.pending_left, &mut self.pending_right] {
            for events in pending.values_mut() {
                let before = events.len();
                events.retain(|e| e.lid.0 >= horizon);
                evicted += (before - events.len()) as u64;
            }
            pending.retain(|_, v| !v.is_empty());
        }
        self.evicted += evicted;
    }

    /// Scans new log positions and returns the joins they complete.
    pub fn poll(&mut self) -> Result<Vec<Joined>> {
        let hl = self.log.head_of_log()?;
        let mut out = Vec::new();
        self.evict_expired();
        while self.cursor < hl {
            let lid = self.cursor;
            self.cursor = self.cursor.next();
            let entry = match self.log.read(lid) {
                Ok(e) => e,
                Err(chariots_types::ChariotsError::GarbageCollected(_)) => continue,
                Err(e) => return Err(e),
            };
            let (event, is_left) = match to_event(&entry, &self.left_topic) {
                Some(e) => (e, true),
                None => match to_event(&entry, &self.right_topic) {
                    Some(e) => (e, false),
                    None => continue,
                },
            };
            let Some(key) = event.key.clone() else {
                continue; // unkeyed events cannot join
            };
            let (mine, theirs) = if is_left {
                (&mut self.pending_left, &mut self.pending_right)
            } else {
                (&mut self.pending_right, &mut self.pending_left)
            };
            if let Some(waiting) = theirs.get_mut(&key) {
                let partner = waiting.remove(0);
                if waiting.is_empty() {
                    theirs.remove(&key);
                }
                let (left, right) = if is_left {
                    (event, partner)
                } else {
                    (partner, event)
                };
                out.push(Joined { key, left, right });
            } else {
                mine.entry(key).or_default().push(event);
            }
        }
        self.evict_expired();
        Ok(out)
    }

    /// Events buffered awaiting a partner.
    pub fn pending(&self) -> usize {
        self.pending_left.values().map(Vec::len).sum::<usize>()
            + self.pending_right.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chariots_core::{ChariotsCluster, StageStations};
    use chariots_simnet::LinkConfig;
    use chariots_types::{ChariotsConfig, FLStoreConfig};
    use std::time::{Duration, Instant};

    fn launch(n: usize) -> ChariotsCluster {
        let mut cfg = ChariotsConfig::new().datacenters(n);
        cfg.flstore = FLStoreConfig::new()
            .maintainers(2)
            .batch_size(8)
            .gossip_interval(Duration::from_millis(1));
        cfg.batcher_flush_threshold = 2;
        cfg.batcher_flush_interval = Duration::from_millis(1);
        cfg.propagation_interval = Duration::from_millis(2);
        ChariotsCluster::launch(
            cfg,
            StageStations::default(),
            LinkConfig::with_latency(Duration::from_millis(2)),
        )
        .unwrap()
    }

    fn dc(i: u16) -> DatacenterId {
        DatacenterId(i)
    }

    fn poll_until(reader: &mut Reader, n: usize) -> Vec<Event> {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut events = Vec::new();
        while events.len() < n {
            events.extend(reader.poll(64).unwrap());
            assert!(Instant::now() < deadline, "only {} events", events.len());
            std::thread::sleep(Duration::from_millis(2));
        }
        events
    }

    #[test]
    fn publish_and_read_in_order_exactly_once() {
        let cluster = launch(1);
        let mut publisher = Publisher::new(cluster.client(dc(0)));
        for i in 0..10 {
            publisher.publish("clicks", format!("click{i}")).unwrap();
        }
        let mut reader = Reader::new(cluster.client(dc(0)), "r1", "clicks");
        let events = poll_until(&mut reader, 10);
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.body, format!("click{i}").into_bytes());
        }
        // Exactly-once: a further poll returns nothing new.
        assert!(reader.poll(64).unwrap().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn topics_are_isolated() {
        let cluster = launch(1);
        let mut publisher = Publisher::new(cluster.client(dc(0)));
        publisher.publish("clicks", "c").unwrap();
        publisher.publish("queries", "q").unwrap();
        publisher.publish("clicks", "c2").unwrap();
        let mut reader = Reader::new(cluster.client(dc(0)), "r", "clicks");
        let events = poll_until(&mut reader, 2);
        assert!(events.iter().all(|e| e.topic == "clicks"));
        cluster.shutdown();
    }

    #[test]
    fn checkpoint_and_recover_resume_exactly_once() {
        let cluster = launch(1);
        let mut publisher = Publisher::new(cluster.client(dc(0)));
        for i in 0..6 {
            publisher.publish("t", format!("e{i}")).unwrap();
        }
        let mut reader = Reader::new(cluster.client(dc(0)), "worker-7", "t");
        let first = poll_until(&mut reader, 6);
        assert_eq!(first.len(), 6);
        reader.checkpoint().unwrap();
        drop(reader); // "crash"
        for i in 6..9 {
            publisher.publish("t", format!("e{i}")).unwrap();
        }
        let mut revived = Reader::recover(cluster.client(dc(0)), "worker-7", "t").unwrap();
        let rest = poll_until(&mut revived, 3);
        let bodies: Vec<String> = rest
            .iter()
            .map(|e| String::from_utf8(e.body.clone()).unwrap())
            .collect();
        assert_eq!(bodies, vec!["e6", "e7", "e8"], "no replays, no losses");
        cluster.shutdown();
    }

    #[test]
    fn partitioned_readers_cover_disjointly() {
        let cluster = launch(1);
        let mut publisher = Publisher::new(cluster.client(dc(0)));
        for i in 0..12 {
            publisher.publish("t", format!("e{i}")).unwrap();
        }
        let mut r0 = Reader::new(cluster.client(dc(0)), "g-0", "t").partitioned(2, 0);
        let mut r1 = Reader::new(cluster.client(dc(0)), "g-1", "t").partitioned(2, 1);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut all = Vec::new();
        while all.len() < 12 {
            all.extend(r0.poll(64).unwrap());
            all.extend(r1.poll(64).unwrap());
            assert!(Instant::now() < deadline, "got {}", all.len());
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut lids: Vec<u64> = all.iter().map(|e| e.lid.0).collect();
        lids.sort_unstable();
        lids.dedup();
        assert_eq!(lids.len(), 12, "no event delivered to both partitions");
        cluster.shutdown();
    }

    #[test]
    fn photon_join_across_datacenters() {
        // Clicks published at DC 0, queries at DC 1 — joined at DC 0.
        let cluster = launch(2);
        let mut clicks = Publisher::new(cluster.client(dc(0)));
        let mut queries = Publisher::new(cluster.client(dc(1)));
        queries
            .publish_keyed("queries", "q42", "search: rust logs")
            .unwrap();
        clicks
            .publish_keyed("clicks", "q42", "clicked result 3")
            .unwrap();
        clicks
            .publish_keyed("clicks", "q77", "orphan click")
            .unwrap();
        assert!(cluster.wait_for_replication(3, Duration::from_secs(10)));
        let mut joiner = Joiner::new(cluster.client(dc(0)), "clicks", "queries");
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut joined = Vec::new();
        while joined.is_empty() {
            joined.extend(joiner.poll().unwrap());
            assert!(Instant::now() < deadline, "join never completed");
            std::thread::sleep(Duration::from_millis(3));
        }
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].key, "q42");
        assert_eq!(joined[0].left.publisher, dc(0));
        assert_eq!(joined[0].right.publisher, dc(1));
        assert_eq!(joiner.pending(), 1, "the orphan click is buffered");
        cluster.shutdown();
    }

    #[test]
    fn windowed_join_evicts_stale_events() {
        let cluster = launch(1);
        let mut publisher = Publisher::new(cluster.client(dc(0)));
        // An orphan event, then enough unrelated traffic to push it past
        // the window.
        publisher
            .publish_keyed("l", "orphan", "never matched")
            .unwrap();
        for i in 0..20 {
            publisher.publish("noise", format!("n{i}")).unwrap();
        }
        let mut joiner = Joiner::new(cluster.client(dc(0)), "l", "r").with_window(5);
        let deadline = Instant::now() + Duration::from_secs(10);
        while joiner.evicted() == 0 {
            joiner.poll().unwrap();
            assert!(Instant::now() < deadline, "orphan never evicted");
            std::thread::sleep(Duration::from_millis(3));
        }
        assert_eq!(joiner.pending(), 0);
        // A matching right-event arriving now finds nothing: the join
        // window has closed, exactly like Photon dropping late clicks.
        publisher.publish_keyed("r", "orphan", "too late").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let joined = joiner.poll().unwrap();
        assert!(joined.is_empty(), "joined across a closed window");
        cluster.shutdown();
    }

    #[test]
    fn unwindowed_join_buffers_indefinitely() {
        let cluster = launch(1);
        let mut publisher = Publisher::new(cluster.client(dc(0)));
        publisher.publish_keyed("l", "k", "left").unwrap();
        for i in 0..20 {
            publisher.publish("noise", format!("n{i}")).unwrap();
        }
        publisher.publish_keyed("r", "k", "right").unwrap();
        let mut joiner = Joiner::new(cluster.client(dc(0)), "l", "r");
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut joined = Vec::new();
        while joined.is_empty() {
            joined.extend(joiner.poll().unwrap());
            assert!(Instant::now() < deadline, "join never completed");
            std::thread::sleep(Duration::from_millis(3));
        }
        assert_eq!(joined[0].key, "k");
        cluster.shutdown();
    }

    #[test]
    fn reader_group_merges_partitions_in_log_order() {
        let cluster = launch(1);
        let mut publisher = Publisher::new(cluster.client(dc(0)));
        for i in 0..20 {
            publisher.publish("t", format!("e{i}")).unwrap();
        }
        let mut group = ReaderGroup::new(3, "grp", "t", || cluster.client(dc(0)));
        assert_eq!(group.len(), 3);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut events: Vec<Event> = Vec::new();
        while events.len() < 20 {
            events.extend(group.poll(64).unwrap());
            assert!(
                Instant::now() < deadline,
                "group stalled at {}",
                events.len()
            );
            std::thread::sleep(Duration::from_millis(3));
        }
        // Each poll batch is LId-ordered and the union is exactly-once.
        let mut lids: Vec<u64> = events.iter().map(|e| e.lid.0).collect();
        let mut deduped = lids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), 20, "duplicate delivery inside the group");
        lids.sort_unstable();
        assert_eq!(lids, deduped);
        cluster.shutdown();
    }
}
