//! # chariots-corfu
//!
//! A CORFU-style shared log baseline (Balakrishnan et al., NSDI 2012; used
//! by Tango, SOSP 2013) — the design Chariots §5.2 argues against.
//!
//! CORFU is **client-driven with pre-assignment**: a centralized
//! [`sequencer`] hands out log positions, and clients then write their
//! records directly to the storage [`unit`]s (striped, write-once). The
//! sequencer is off the data path, so the log's bandwidth exceeds a single
//! machine's I/O — but every append still costs one sequencer interaction,
//! so total throughput is capped by the sequencer's capacity no matter how
//! many storage units are added. The bench harness demonstrates exactly
//! that cap against FLStore's linear scaling.
//!
//! ```
//! use chariots_corfu::CorfuLog;
//! use chariots_simnet::StationConfig;
//!
//! let log = CorfuLog::launch(3, StationConfig::uncapped(), StationConfig::uncapped());
//! let client = log.client();
//! let pos = client.append(b"hello".to_vec()).unwrap();
//! assert_eq!(pos, 0);
//! assert_eq!(client.read(pos).unwrap(), b"hello".to_vec());
//! log.shutdown();
//! ```

#![warn(missing_docs)]

pub mod sequencer;
pub mod unit;

use std::sync::Arc;

use chariots_simnet::{Histogram, MetricsRegistry, MetricsSnapshot, Shutdown, StationConfig};
use chariots_types::{ChariotsError, Result};

pub use sequencer::{spawn_sequencer, SequencerHandle};
pub use unit::{StorageUnit, UnitSlot};

/// A running CORFU-style deployment: one sequencer plus `n` storage units.
pub struct CorfuLog {
    sequencer: SequencerHandle,
    units: Vec<Arc<StorageUnit>>,
    registry: MetricsRegistry,
    shutdown: Shutdown,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl CorfuLog {
    /// Launches the deployment. `sequencer_station` caps the sequencer's
    /// request rate (its network I/O — the bottleneck under test);
    /// `unit_station` caps each storage unit's write bandwidth.
    pub fn launch(
        num_units: usize,
        sequencer_station: StationConfig,
        unit_station: StationConfig,
    ) -> Self {
        assert!(num_units > 0);
        let shutdown = Shutdown::new();
        let (sequencer, seq_thread) = spawn_sequencer(sequencer_station, shutdown.clone());
        let units: Vec<Arc<StorageUnit>> = (0..num_units)
            .map(|i| Arc::new(StorageUnit::new(i, unit_station.clone())))
            .collect();
        let registry = MetricsRegistry::new("corfu");
        registry.register_counter(
            "corfu.sequencer.reservations",
            sequencer.reservations_counter(),
        );
        for unit in &units {
            registry.register_counter(
                format!("corfu.unit{}.writes", unit.index()),
                unit.writes_counter(),
            );
        }
        // Create the latency histograms up front so an idle deployment
        // still snapshots with the full metric set.
        registry.histogram("corfu.append.latency_us");
        registry.histogram("corfu.sequencer.latency_us");
        registry.histogram("corfu.unit.write_latency_us");
        CorfuLog {
            sequencer,
            units,
            registry,
            shutdown,
            threads: vec![seq_thread],
        }
    }

    /// A client of this log. Clients are cheap; make one per worker thread.
    pub fn client(&self) -> CorfuClient {
        CorfuClient {
            sequencer: self.sequencer.clone(),
            units: self.units.clone(),
            append_latency: self.registry.histogram("corfu.append.latency_us"),
            sequencer_latency: self.registry.histogram("corfu.sequencer.latency_us"),
            unit_write_latency: self.registry.histogram("corfu.unit.write_latency_us"),
        }
    }

    /// The deployment's metrics registry (`corfu.*` names).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A point-in-time snapshot of the deployment's metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The sequencer handle (bench instrumentation).
    pub fn sequencer(&self) -> &SequencerHandle {
        &self.sequencer
    }

    /// The storage units (bench instrumentation).
    pub fn units(&self) -> &[Arc<StorageUnit>] {
        &self.units
    }

    /// Stops the sequencer thread.
    pub fn shutdown(mut self) {
        self.shutdown.signal();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A CORFU client: reserves positions from the sequencer, then writes
/// directly to the striped storage units.
#[derive(Clone)]
pub struct CorfuClient {
    sequencer: SequencerHandle,
    units: Vec<Arc<StorageUnit>>,
    append_latency: Histogram,
    sequencer_latency: Histogram,
    unit_write_latency: Histogram,
}

impl CorfuClient {
    #[inline]
    fn unit_for(&self, pos: u64) -> &StorageUnit {
        &self.units[(pos % self.units.len() as u64) as usize]
    }

    /// Appends one record: one sequencer round trip, then a direct write.
    pub fn append(&self, data: Vec<u8>) -> Result<u64> {
        let t0 = std::time::Instant::now();
        let pos = self.sequencer.reserve(1)?;
        self.sequencer_latency.record_duration(t0.elapsed());
        let t1 = std::time::Instant::now();
        self.unit_for(pos).write(pos, data)?;
        self.unit_write_latency.record_duration(t1.elapsed());
        self.append_latency.record_duration(t0.elapsed());
        Ok(pos)
    }

    /// Appends a batch: one sequencer round trip for the whole range
    /// (CORFU's batched-token optimization), then per-unit writes.
    pub fn append_batch(&self, batch: Vec<Vec<u8>>) -> Result<u64> {
        let n = batch.len() as u64;
        if n == 0 {
            return self.sequencer.reserve(0);
        }
        let t0 = std::time::Instant::now();
        let start = self.sequencer.reserve(n)?;
        self.sequencer_latency.record_duration(t0.elapsed());
        for (i, data) in batch.into_iter().enumerate() {
            let t1 = std::time::Instant::now();
            self.unit_for(start + i as u64)
                .write(start + i as u64, data)?;
            self.unit_write_latency.record_duration(t1.elapsed());
        }
        self.append_latency.record_duration(t0.elapsed());
        Ok(start)
    }

    /// Reads the record at `pos`.
    pub fn read(&self, pos: u64) -> Result<Vec<u8>> {
        self.unit_for(pos).read(pos)
    }

    /// Fills a hole left by a crashed client (CORFU's junk-fill), making
    /// the position unreadable but complete so readers can advance.
    pub fn fill_hole(&self, pos: u64) -> Result<()> {
        self.unit_for(pos).fill(pos)
    }

    /// The tail position the sequencer would hand out next.
    pub fn tail(&self) -> Result<u64> {
        self.sequencer.tail()
    }
}

impl std::fmt::Debug for CorfuClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorfuClient")
            .field("units", &self.units.len())
            .finish()
    }
}

/// Convenience: the error CORFU reports when reading a junk-filled hole.
pub fn is_hole(err: &ChariotsError) -> bool {
    matches!(err, ChariotsError::Storage(msg) if msg.contains("hole"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(units: usize) -> CorfuLog {
        CorfuLog::launch(units, StationConfig::uncapped(), StationConfig::uncapped())
    }

    #[test]
    fn appends_get_dense_positions() {
        let log = launch(3);
        let client = log.client();
        for expect in 0..10u64 {
            assert_eq!(client.append(vec![expect as u8]).unwrap(), expect);
        }
        for pos in 0..10u64 {
            assert_eq!(client.read(pos).unwrap(), vec![pos as u8]);
        }
        log.shutdown();
    }

    #[test]
    fn batch_append_reserves_a_range() {
        let log = launch(2);
        let client = log.client();
        let start = client
            .append_batch(vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()])
            .unwrap();
        assert_eq!(start, 0);
        assert_eq!(client.read(2).unwrap(), b"c".to_vec());
        assert_eq!(client.tail().unwrap(), 3);
        log.shutdown();
    }

    #[test]
    fn concurrent_clients_never_collide() {
        let log = launch(4);
        let mut handles = Vec::new();
        for t in 0..4 {
            let client = log.client();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..50 {
                    got.push(client.append(vec![t as u8, i as u8]).unwrap());
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200, "every append got a unique position");
        assert_eq!(*all.last().unwrap(), 199, "and the range is dense");
        log.shutdown();
    }

    #[test]
    fn hole_fill_completes_a_crashed_append() {
        let log = launch(2);
        let client = log.client();
        // A "crashed" client reserved position 0 but never wrote it.
        let pos = client.tail().unwrap();
        let _ = client.sequencer.reserve(1).unwrap();
        // Another client fills the hole so readers can proceed.
        client.fill_hole(pos).unwrap();
        let err = client.read(pos).unwrap_err();
        assert!(is_hole(&err), "expected a hole marker, got {err}");
        // The slot is write-once even after filling.
        assert!(
            client.append(vec![1]).is_ok(),
            "log continues past the hole"
        );
        log.shutdown();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Any mix of single and batched appends from any number of
        /// threads yields dense, unique positions.
        #[test]
        fn concurrent_mixed_appends_stay_dense(
            per_thread in proptest::collection::vec(1usize..5, 2..5),
            units in 1usize..5,
        ) {
            let log = CorfuLog::launch(
                units,
                StationConfig::uncapped(),
                StationConfig::uncapped(),
            );
            let mut handles = Vec::new();
            let mut expected_total = 0u64;
            for (t, batches) in per_thread.iter().enumerate() {
                let client = log.client();
                let batches = *batches;
                expected_total += (batches * (batches + 1) / 2) as u64;
                handles.push(std::thread::spawn(move || {
                    for b in 1..=batches {
                        let batch: Vec<Vec<u8>> =
                            (0..b).map(|i| vec![t as u8, i as u8]).collect();
                        client.append_batch(batch).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let client = log.client();
            prop_assert_eq!(client.tail().unwrap(), expected_total);
            // Every position readable, none empty.
            for pos in 0..expected_total {
                prop_assert!(client.read(pos).is_ok(), "hole at {}", pos);
            }
            log.shutdown();
        }

        /// Striping sends position p to unit p mod n, always.
        #[test]
        fn striping_is_deterministic(units in 1usize..6, appends in 1u64..40) {
            let log = CorfuLog::launch(
                units,
                StationConfig::uncapped(),
                StationConfig::uncapped(),
            );
            let client = log.client();
            for i in 0..appends {
                client.append(vec![i as u8]).unwrap();
            }
            let per_unit: Vec<u64> =
                log.units().iter().map(|u| u.writes_counter().get()).collect();
            for (i, &count) in per_unit.iter().enumerate() {
                let expected =
                    (0..appends).filter(|p| (*p % units as u64) as usize == i).count() as u64;
                prop_assert_eq!(count, expected, "unit {} write count", i);
            }
            log.shutdown();
        }
    }
}
