//! CORFU storage units: write-once striped pages.
//!
//! Each unit stores the positions `p` with `p mod num_units == unit_index`.
//! Slots are write-once (a flash page); overwrites are errors, and holes
//! left by crashed clients can be junk-filled so readers can advance.

use std::collections::HashMap;
use std::sync::Arc;

use chariots_simnet::{Counter, ServiceStation, StationConfig};
use chariots_types::{ChariotsError, Result};
use parking_lot::Mutex;

/// One slot of a storage unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitSlot {
    /// A written record.
    Data(Vec<u8>),
    /// A junk-filled hole (reserved by a client that never wrote).
    Hole,
}

/// One write-once storage unit.
#[derive(Debug)]
pub struct StorageUnit {
    index: usize,
    slots: Mutex<HashMap<u64, UnitSlot>>,
    station: Arc<ServiceStation>,
    writes: Counter,
}

impl StorageUnit {
    /// Creates unit `index` paced by `station_cfg`.
    pub fn new(index: usize, station_cfg: StationConfig) -> Self {
        StorageUnit {
            index,
            slots: Mutex::new(HashMap::new()),
            station: Arc::new(ServiceStation::new(format!("unit-{index}"), station_cfg)),
            writes: Counter::new(),
        }
    }

    /// This unit's stripe index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Writes `data` at `pos`. Write-once: an occupied slot is an error.
    pub fn write(&self, pos: u64, data: Vec<u8>) -> Result<()> {
        self.station.note_arrival(1);
        self.station.serve(1)?;
        let mut slots = self.slots.lock();
        if slots.contains_key(&pos) {
            return Err(ChariotsError::Storage(format!(
                "position {pos} already written (write-once)"
            )));
        }
        slots.insert(pos, UnitSlot::Data(data));
        self.writes.add(1);
        Ok(())
    }

    /// Junk-fills `pos` (idempotent against races with the original
    /// writer: if data landed first, the fill is a no-op failure).
    pub fn fill(&self, pos: u64) -> Result<()> {
        let mut slots = self.slots.lock();
        match slots.get(&pos) {
            Some(UnitSlot::Data(_)) => Err(ChariotsError::Storage(format!(
                "position {pos} already written (write-once)"
            ))),
            Some(UnitSlot::Hole) => Ok(()),
            None => {
                slots.insert(pos, UnitSlot::Hole);
                Ok(())
            }
        }
    }

    /// Reads the record at `pos`.
    pub fn read(&self, pos: u64) -> Result<Vec<u8>> {
        let slots = self.slots.lock();
        match slots.get(&pos) {
            Some(UnitSlot::Data(d)) => Ok(d.clone()),
            Some(UnitSlot::Hole) => Err(ChariotsError::Storage(format!(
                "position {pos} is a junk-filled hole"
            ))),
            None => Err(ChariotsError::NotYetAvailable(chariots_types::LId(pos))),
        }
    }

    /// Total successful writes (bench instrumentation).
    pub fn writes_counter(&self) -> Counter {
        self.writes.clone()
    }

    /// The unit's capacity model.
    pub fn station(&self) -> Arc<ServiceStation> {
        Arc::clone(&self.station)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let u = StorageUnit::new(0, StationConfig::uncapped());
        u.write(0, b"x".to_vec()).unwrap();
        assert_eq!(u.read(0).unwrap(), b"x".to_vec());
    }

    #[test]
    fn slots_are_write_once() {
        let u = StorageUnit::new(0, StationConfig::uncapped());
        u.write(3, b"a".to_vec()).unwrap();
        assert!(u.write(3, b"b".to_vec()).is_err());
        assert_eq!(u.read(3).unwrap(), b"a".to_vec());
    }

    #[test]
    fn unwritten_reads_are_not_yet_available() {
        let u = StorageUnit::new(0, StationConfig::uncapped());
        assert!(matches!(u.read(9), Err(ChariotsError::NotYetAvailable(_))));
    }

    #[test]
    fn fill_is_idempotent_and_loses_to_data() {
        let u = StorageUnit::new(0, StationConfig::uncapped());
        u.fill(1).unwrap();
        u.fill(1).unwrap();
        assert!(u.read(1).is_err());
        u.write(2, b"d".to_vec()).unwrap();
        assert!(u.fill(2).is_err(), "fill must not clobber data");
    }
}
