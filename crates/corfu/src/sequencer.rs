//! The centralized sequencer: CORFU's position pre-assignment service.
//!
//! "The CORFU protocol … uses a centralized sequencer that assigns offsets
//! to clients to be filled later. This takes the sequencer out of the data
//! path … However, it is still limited by the bandwidth of the sequencer"
//! (Chariots §1). The sequencer here is one worker thread whose request
//! rate is paced by a [`ServiceStation`] — add all the storage units you
//! like, every append still queues here first.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use chariots_simnet::{Counter, ServiceStation, Shutdown, StationConfig};
use chariots_types::{ChariotsError, Result};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

enum Request {
    /// Reserve `n` consecutive positions; reply with the first.
    Reserve { n: u64, reply: Sender<u64> },
    /// Read the tail without reserving.
    Tail { reply: Sender<u64> },
}

/// Client handle to the sequencer.
#[derive(Clone)]
pub struct SequencerHandle {
    tx: Sender<Request>,
    station: Arc<ServiceStation>,
    reservations: Counter,
}

impl SequencerHandle {
    /// Reserves `n` consecutive positions, returning the first.
    pub fn reserve(&self, n: u64) -> Result<u64> {
        self.station.note_arrival(1);
        let (reply, rx) = bounded(1);
        self.tx
            .send(Request::Reserve { n, reply })
            .map_err(|_| ChariotsError::ShutDown)?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)
    }

    /// The next position the sequencer would hand out.
    pub fn tail(&self) -> Result<u64> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Request::Tail { reply })
            .map_err(|_| ChariotsError::ShutDown)?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)
    }

    /// Total reservation requests served (bench instrumentation). Each
    /// request costs one unit of sequencer capacity regardless of batch
    /// size — that asymmetry is why client-side batching helps CORFU but
    /// can never remove the cap.
    pub fn reservations_counter(&self) -> Counter {
        self.reservations.clone()
    }

    /// The sequencer machine's capacity model.
    pub fn station(&self) -> Arc<ServiceStation> {
        Arc::clone(&self.station)
    }
}

/// Spawns the sequencer thread.
pub fn spawn_sequencer(
    station_cfg: StationConfig,
    shutdown: Shutdown,
) -> (SequencerHandle, JoinHandle<()>) {
    let (tx, rx): (Sender<Request>, Receiver<Request>) = unbounded();
    let station = Arc::new(ServiceStation::new("sequencer", station_cfg));
    let reservations = Counter::new();
    let handle = SequencerHandle {
        tx,
        station: Arc::clone(&station),
        reservations: reservations.clone(),
    };
    let thread = std::thread::Builder::new()
        .name("corfu-sequencer".into())
        .spawn(move || {
            let mut tail: u64 = 0;
            loop {
                if shutdown.is_signaled() {
                    return;
                }
                match rx.recv_timeout(Duration::from_millis(20)) {
                    Ok(Request::Reserve { n, reply }) => {
                        // One request = one unit of sequencer I/O,
                        // regardless of the batch size it reserves.
                        if station.serve(1).is_err() {
                            continue; // crashed: the client's recv fails? No
                                      // — drop the reply sender so the
                                      // client sees ShutDown-style failure.
                        }
                        reservations.add(1);
                        let start = tail;
                        tail += n;
                        let _ = reply.send(start);
                    }
                    Ok(Request::Tail { reply }) => {
                        let _ = reply.send(tail);
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        })
        .expect("spawn sequencer");
    (handle, thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn reservations_are_consecutive() {
        let shutdown = Shutdown::new();
        let (seq, thread) = spawn_sequencer(StationConfig::uncapped(), shutdown.clone());
        assert_eq!(seq.reserve(1).unwrap(), 0);
        assert_eq!(seq.reserve(5).unwrap(), 1);
        assert_eq!(seq.reserve(1).unwrap(), 6);
        assert_eq!(seq.tail().unwrap(), 7);
        assert_eq!(seq.reservations_counter().get(), 3);
        shutdown.signal();
        thread.join().unwrap();
    }

    #[test]
    fn capped_sequencer_limits_request_rate() {
        let shutdown = Shutdown::new();
        let (seq, thread) = spawn_sequencer(StationConfig::with_rate(1_000.0), shutdown.clone());
        let start = Instant::now();
        for _ in 0..100 {
            seq.reserve(1).unwrap();
        }
        // 100 requests at 1000 req/s ⇒ ≥ ~100 ms.
        assert!(start.elapsed() >= Duration::from_millis(80));
        shutdown.signal();
        thread.join().unwrap();
    }

    #[test]
    fn batch_reservations_cost_one_request() {
        let shutdown = Shutdown::new();
        let (seq, thread) = spawn_sequencer(StationConfig::with_rate(1_000.0), shutdown.clone());
        let start = Instant::now();
        // 100 positions in one request: fast despite the cap.
        assert_eq!(seq.reserve(100).unwrap(), 0);
        assert!(start.elapsed() < Duration::from_millis(50));
        shutdown.signal();
        thread.join().unwrap();
    }
}
