//! # chariots-msgfutures
//!
//! **Message Futures** and **Helios**-style commit protocols: strongly
//! consistent transactions on geo-replicated data, built over the causally
//! ordered Chariots shared log (§4.3 of *Chariots*, EDBT 2015; protocols
//! from Nawab et al., CIDR 2013 and SIGMOD 2015).
//!
//! The construction follows the papers' architecture: transactions execute
//! optimistically, then a **commit request record** is appended to the
//! causal log. The log's replication ("histories") doubles as the commit
//! protocol's communication: a transaction `t` at datacenter `A` is
//! decidable once `A` has exchanged histories with every other datacenter
//! up to the point where they saw `t` — Message Futures' "waits for other
//! datacenters to send their histories up to the point of t's position in
//! the log". Conflicts are then detected among the **concurrent**
//! transactions (mutually invisible in the causal order), and resolved by
//! a deterministic priority rule that every datacenter evaluates
//! identically, so no coordination beyond the log itself is needed.
//!
//! ## Scope of the reproduction
//!
//! The full Message Futures and Helios protocols include machinery this
//! module simplifies (documented per `DESIGN.md` §3):
//!
//! * Validation is **conservative**: a transaction commits iff it has the
//!   minimum priority among its conflicting concurrent set. This preserves
//!   the headline invariant — *of any set of pairwise-conflicting
//!   concurrent transactions at most one commits, and every datacenter
//!   decides every transaction identically* — at the cost of some commits
//!   the full protocols would allow.
//! * [`CommitPolicy::Helios`] models Helios' conflict-zone optimization by
//!   validating only against the transaction's conflict zone (records not
//!   already visible to it), rather than implementing the RTT lower-bound
//!   calculation.

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chariots_core::{ATable, ChariotsClient, ChariotsDc};
use chariots_types::{
    ChariotsError, DatacenterId, LId, RecordId, Result, TOId, Tag, TagSet, VersionVector,
};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Tag marking transaction commit-request records.
pub const TXN_TAG: &str = "txn.request";

/// The serialized body of a commit-request record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnBody {
    /// Client-supplied label (diagnostics).
    pub label: String,
    /// Keys read.
    pub read_set: BTreeSet<String>,
    /// Keys written, with their new values.
    pub write_set: BTreeMap<String, String>,
}

/// Which commit protocol drives validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPolicy {
    /// Validate against every concurrent transaction (Message Futures).
    MessageFutures,
    /// Validate only within the conflict zone — transactions not already
    /// visible to this one (Helios).
    Helios,
}

/// The outcome of a commit request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Committed; the record sits at this position in the local log.
    Committed(LId),
    /// Aborted due to a conflict with this concurrent transaction.
    Aborted {
        /// The conflicting transaction's record identity.
        conflict_with: RecordId,
    },
}

/// An in-progress transaction: buffered reads and writes.
#[derive(Debug, Default)]
pub struct Transaction {
    label: String,
    read_set: BTreeSet<String>,
    write_set: BTreeMap<String, String>,
}

impl Transaction {
    /// Starts a transaction with a diagnostic label.
    pub fn new(label: impl Into<String>) -> Self {
        Transaction {
            label: label.into(),
            ..Transaction::default()
        }
    }

    /// Buffers a write.
    pub fn write(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.write_set.insert(key.into(), value.into());
    }
}

/// One transaction record as observed in the log.
#[derive(Debug, Clone)]
struct TxnEntry {
    id: RecordId,
    lid: LId,
    deps: VersionVector,
    body: TxnBody,
    /// `None` until decidable; then the agreed outcome.
    decided: Option<bool>,
}

impl TxnEntry {
    /// Deterministic priority: lower (TOId, host) wins conflicts.
    fn priority(&self) -> (TOId, DatacenterId) {
        (self.id.toid, self.id.host)
    }

    fn conflicts_with(&self, other: &TxnEntry) -> bool {
        let w_overlaps = |a: &TxnEntry, b: &TxnEntry| {
            a.body
                .write_set
                .keys()
                .any(|k| b.body.write_set.contains_key(k) || b.body.read_set.contains(k))
        };
        w_overlaps(self, other) || w_overlaps(other, self)
    }

    /// Mutually invisible in the causal order.
    fn concurrent_with(&self, other: &TxnEntry) -> bool {
        !self.deps.covers(other.id.host, other.id.toid)
            && !other.deps.covers(self.id.host, self.id.toid)
    }
}

/// The transaction manager of one datacenter.
///
/// It scans the local log for commit-request records, decides each one
/// with the deterministic rule once its concurrent set is fully known, and
/// materializes committed writes into a key-value view.
pub struct TxnManager {
    log: ChariotsClient,
    atable: Arc<RwLock<ATable>>,
    dc: DatacenterId,
    num_datacenters: usize,
    policy: CommitPolicy,
    scan_cursor: LId,
    txns: BTreeMap<RecordId, TxnEntry>,
    /// Materialized committed state: key → (position of writer, value).
    store: BTreeMap<String, (LId, String)>,
    commits: u64,
    aborts: u64,
}

impl TxnManager {
    /// Attaches a manager to a datacenter.
    pub fn new(dc: &ChariotsDc, policy: CommitPolicy) -> Self {
        TxnManager {
            log: dc.client(),
            atable: dc.atable(),
            dc: dc.id(),
            num_datacenters: dc.config().num_datacenters,
            policy,
            scan_cursor: LId::ZERO,
            txns: BTreeMap::new(),
            store: BTreeMap::new(),
            commits: 0,
            aborts: 0,
        }
    }

    /// Reads a key's committed value (the transaction's read set is
    /// tracked for validation).
    pub fn read(&mut self, txn: &mut Transaction, key: &str) -> Result<Option<String>> {
        self.refresh()?;
        txn.read_set.insert(key.to_owned());
        // Read-your-writes within the transaction.
        if let Some(v) = txn.write_set.get(key) {
            return Ok(Some(v.clone()));
        }
        Ok(self.store.get(key).map(|(_, v)| v.clone()))
    }

    /// Commits a transaction: appends its record, waits for history
    /// exchange with every datacenter, validates, and returns the agreed
    /// outcome. Blocks up to `timeout` (strong consistency is unavailable
    /// during partitions — the CAP price the paper's §1 discusses).
    pub fn commit(&mut self, txn: Transaction, timeout: Duration) -> Result<Outcome> {
        let body = TxnBody {
            label: txn.label,
            read_set: txn.read_set,
            write_set: txn.write_set,
        };
        let encoded = serde_json::to_vec(&body).expect("txn body serializes");
        let tags = TagSet::new().with(Tag::with_value(TXN_TAG, body.label.as_str()));
        let (toid, _lid) = self.log.append(tags, encoded)?;
        let id = RecordId::new(self.dc, toid);
        let deadline = Instant::now() + timeout;
        loop {
            self.refresh()?;
            if let Some(entry) = self.txns.get(&id) {
                if let Some(committed) = entry.decided {
                    return Ok(if committed {
                        Outcome::Committed(entry.lid)
                    } else {
                        let conflict = self
                            .blocking_conflict(&self.txns[&id])
                            .expect("aborted txn has a conflict");
                        Outcome::Aborted {
                            conflict_with: conflict,
                        }
                    });
                }
            }
            if Instant::now() >= deadline {
                return Err(ChariotsError::Unavailable(format!(
                    "commit of {id} timed out awaiting history exchange"
                )));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Commits and aborts decided so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.commits, self.aborts)
    }

    /// The committed value of a key, outside any transaction.
    pub fn get_committed(&mut self, key: &str) -> Result<Option<String>> {
        self.refresh()?;
        Ok(self.store.get(key).map(|(_, v)| v.clone()))
    }

    /// Scans new log records and decides every decidable transaction.
    pub fn refresh(&mut self) -> Result<()> {
        let hl = self.log.head_of_log()?;
        while self.scan_cursor < hl {
            let lid = self.scan_cursor;
            self.scan_cursor = self.scan_cursor.next();
            let entry = match self.log.read(lid) {
                Ok(e) => e,
                Err(ChariotsError::GarbageCollected(_)) => continue,
                Err(e) => return Err(e),
            };
            if !entry.record.tags.contains_key(TXN_TAG) {
                continue;
            }
            let Ok(body) = serde_json::from_slice::<TxnBody>(&entry.record.body) else {
                continue;
            };
            self.txns.entry(entry.id()).or_insert(TxnEntry {
                id: entry.id(),
                lid: entry.lid,
                deps: entry.record.deps.clone(),
                body,
                decided: None,
            });
        }
        self.decide_ready();
        Ok(())
    }

    /// Whether the observer has certainly seen every transaction that can
    /// be concurrent with `t`: each datacenter `k` acknowledged `t`'s
    /// record while having `x_k` records of its own, and the local log has
    /// incorporated `k`'s records through `x_k`.
    fn history_exchanged(&self, t: &TxnEntry) -> bool {
        let atable = self.atable.read();
        for k in 0..self.num_datacenters {
            let k = DatacenterId(k as u16);
            if k == t.id.host {
                continue;
            }
            // k has seen t…
            if atable.get(k, t.id.host) < t.id.toid {
                return false;
            }
            // …and we have seen everything k produced before acknowledging.
            let x_k = atable.get(k, k);
            if atable.get(self.dc, k) < x_k {
                return false;
            }
        }
        true
    }

    fn decide_ready(&mut self) {
        let undecided: Vec<RecordId> = self
            .txns
            .values()
            .filter(|t| t.decided.is_none())
            .map(|t| t.id)
            .collect();
        for id in undecided {
            let t = self.txns[&id].clone();
            if !self.history_exchanged(&t) {
                continue;
            }
            let commit = self.blocking_conflict(&t).is_none();
            let entry = self.txns.get_mut(&id).expect("present");
            entry.decided = Some(commit);
            if commit {
                self.commits += 1;
                for (k, v) in &entry.body.write_set {
                    let lid = entry.lid;
                    match self.store.get(k) {
                        Some((prev, _)) if *prev > lid => {}
                        _ => {
                            self.store.insert(k.clone(), (lid, v.clone()));
                        }
                    }
                }
            } else {
                self.aborts += 1;
            }
        }
    }

    /// The deterministic rule: `t` commits iff no conflicting transaction
    /// in its validation set has lower priority. Returns the blocking
    /// transaction's id, if any.
    fn blocking_conflict(&self, t: &TxnEntry) -> Option<RecordId> {
        self.txns
            .values()
            .filter(|u| u.id != t.id)
            .filter(|u| match self.policy {
                // Message Futures validates against every concurrent
                // transaction; Helios narrows to the conflict zone —
                // operationally the same predicate here (records already
                // visible to t are excluded by concurrency), retained as
                // the hook where the zone computation differs.
                CommitPolicy::MessageFutures | CommitPolicy::Helios => t.concurrent_with(u),
            })
            .filter(|u| t.conflicts_with(u))
            .filter(|u| u.priority() < t.priority())
            .map(|u| u.id)
            .min_by_key(|id| (id.toid, id.host))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chariots_core::{ChariotsCluster, StageStations};
    use chariots_simnet::LinkConfig;
    use chariots_types::{ChariotsConfig, FLStoreConfig};

    fn launch(n: usize) -> ChariotsCluster {
        let mut cfg = ChariotsConfig::new().datacenters(n);
        cfg.flstore = FLStoreConfig::new()
            .maintainers(2)
            .batch_size(8)
            .gossip_interval(Duration::from_millis(1));
        cfg.batcher_flush_threshold = 2;
        cfg.batcher_flush_interval = Duration::from_millis(1);
        cfg.propagation_interval = Duration::from_millis(2);
        ChariotsCluster::launch(
            cfg,
            StageStations::default(),
            LinkConfig::with_latency(Duration::from_millis(2)),
        )
        .unwrap()
    }

    fn dc(i: u16) -> DatacenterId {
        DatacenterId(i)
    }

    const TIMEOUT: Duration = Duration::from_secs(10);

    #[test]
    fn single_txn_commits_and_materializes() {
        let cluster = launch(2);
        let mut tm = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::MessageFutures);
        let mut t = Transaction::new("t1");
        t.write("balance", "100");
        let outcome = tm.commit(t, TIMEOUT).unwrap();
        assert!(matches!(outcome, Outcome::Committed(_)));
        assert_eq!(tm.get_committed("balance").unwrap().unwrap(), "100");
        cluster.shutdown();
    }

    #[test]
    fn remote_manager_agrees_on_outcome() {
        let cluster = launch(2);
        let mut tm_a = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::MessageFutures);
        let mut tm_b = TxnManager::new(cluster.dc(dc(1)), CommitPolicy::MessageFutures);
        let mut t = Transaction::new("t1");
        t.write("x", "5");
        tm_a.commit(t, TIMEOUT).unwrap();
        // B eventually materializes the same committed write.
        let deadline = Instant::now() + TIMEOUT;
        loop {
            if tm_b.get_committed("x").unwrap().as_deref() == Some("5") {
                break;
            }
            assert!(Instant::now() < deadline, "B never saw the commit");
            std::thread::sleep(Duration::from_millis(3));
        }
        assert_eq!(tm_b.stats(), (1, 0));
        cluster.shutdown();
    }

    #[test]
    fn read_your_writes_inside_transaction() {
        let cluster = launch(2);
        let mut tm = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::MessageFutures);
        let mut t = Transaction::new("t");
        assert_eq!(tm.read(&mut t, "k").unwrap(), None);
        t.write("k", "v");
        assert_eq!(tm.read(&mut t, "k").unwrap().unwrap(), "v");
        cluster.shutdown();
    }

    #[test]
    fn conflicting_concurrent_txns_one_commits_and_all_agree() {
        let cluster = launch(2);
        let mut tm_a = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::MessageFutures);
        let mut tm_b = TxnManager::new(cluster.dc(dc(1)), CommitPolicy::MessageFutures);

        // Both write the same key, concurrently (neither reads first, and
        // the commits race).
        let mut ta = Transaction::new("ta");
        ta.write("hot", "from-A");
        let mut tb = Transaction::new("tb");
        tb.write("hot", "from-B");

        let h_a = std::thread::spawn(move || {
            let out = tm_a.commit(ta, TIMEOUT).unwrap();
            (tm_a, out)
        });
        let h_b = std::thread::spawn(move || {
            let out = tm_b.commit(tb, TIMEOUT).unwrap();
            (tm_b, out)
        });
        let (mut tm_a, out_a) = h_a.join().unwrap();
        let (mut tm_b, out_b) = h_b.join().unwrap();

        let committed = [&out_a, &out_b]
            .iter()
            .filter(|o| matches!(o, Outcome::Committed(_)))
            .count();
        assert_eq!(committed, 1, "exactly one of the conflicting pair commits");

        // Both managers converge to the same value.
        let deadline = Instant::now() + TIMEOUT;
        loop {
            let va = tm_a.get_committed("hot").unwrap();
            let vb = tm_b.get_committed("hot").unwrap();
            if va.is_some() && va == vb {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "managers disagree: {va:?} vs {vb:?}"
            );
            std::thread::sleep(Duration::from_millis(3));
        }
        cluster.shutdown();
    }

    #[test]
    fn non_conflicting_concurrent_txns_both_commit() {
        let cluster = launch(2);
        let mut tm_a = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::MessageFutures);
        let mut tm_b = TxnManager::new(cluster.dc(dc(1)), CommitPolicy::MessageFutures);
        let mut ta = Transaction::new("ta");
        ta.write("a_key", "1");
        let mut tb = Transaction::new("tb");
        tb.write("b_key", "2");
        let h_a = std::thread::spawn(move || tm_a.commit(ta, TIMEOUT).unwrap());
        let h_b = std::thread::spawn(move || tm_b.commit(tb, TIMEOUT).unwrap());
        assert!(matches!(h_a.join().unwrap(), Outcome::Committed(_)));
        assert!(matches!(h_b.join().unwrap(), Outcome::Committed(_)));
        cluster.shutdown();
    }

    #[test]
    fn helios_policy_also_maintains_the_invariant() {
        let cluster = launch(2);
        let mut tm_a = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::Helios);
        let mut tm_b = TxnManager::new(cluster.dc(dc(1)), CommitPolicy::Helios);
        let mut ta = Transaction::new("ta");
        ta.write("z", "A");
        let mut tb = Transaction::new("tb");
        tb.write("z", "B");
        let h_a = std::thread::spawn(move || tm_a.commit(ta, TIMEOUT).unwrap());
        let h_b = std::thread::spawn(move || tm_b.commit(tb, TIMEOUT).unwrap());
        let outcomes = [h_a.join().unwrap(), h_b.join().unwrap()];
        let committed = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Committed(_)))
            .count();
        assert_eq!(committed, 1);
        cluster.shutdown();
    }

    #[test]
    fn commit_blocks_during_partition_and_resumes_after_heal() {
        let cluster = launch(2);
        let mut tm = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::MessageFutures);
        cluster.partition(dc(0), dc(1));
        let mut t = Transaction::new("partitioned");
        t.write("p", "1");
        let err = tm.commit(t, Duration::from_millis(300)).unwrap_err();
        assert!(matches!(err, ChariotsError::Unavailable(_)), "{err}");
        cluster.heal(dc(0), dc(1));
        // The record is already in the log; once histories exchange, the
        // same transaction decides (and commits — no conflicts).
        let deadline = Instant::now() + TIMEOUT;
        loop {
            tm.refresh().unwrap();
            if tm.get_committed("p").unwrap().as_deref() == Some("1") {
                break;
            }
            assert!(Instant::now() < deadline, "commit never resumed after heal");
            std::thread::sleep(Duration::from_millis(5));
        }
        cluster.shutdown();
    }

    #[test]
    fn causally_ordered_txns_are_not_concurrent() {
        // A commits t1; B reads the key (observing t1), then commits t2
        // writing it. t2 conflicts with t1 but is causally AFTER it, so it
        // must commit.
        let cluster = launch(2);
        let mut tm_a = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::MessageFutures);
        let mut tm_b = TxnManager::new(cluster.dc(dc(1)), CommitPolicy::MessageFutures);
        let mut t1 = Transaction::new("t1");
        t1.write("acct", "10");
        tm_a.commit(t1, TIMEOUT).unwrap();
        // B waits to observe t1, reads it, then writes.
        let deadline = Instant::now() + TIMEOUT;
        loop {
            if tm_b.get_committed("acct").unwrap().is_some() {
                break;
            }
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(3));
        }
        let mut t2 = Transaction::new("t2");
        let v = tm_b.read(&mut t2, "acct").unwrap().unwrap();
        assert_eq!(v, "10");
        t2.write("acct", "20");
        let out = tm_b.commit(t2, TIMEOUT).unwrap();
        assert!(
            matches!(out, Outcome::Committed(_)),
            "causally later txn wrongly aborted: {out:?}"
        );
        cluster.shutdown();
    }

    #[test]
    fn three_way_conflict_chain_is_decided_consistently() {
        // t_a, t_b, t_c all write the same key concurrently from two DCs:
        // the minimum-priority one commits, the rest abort, and both
        // managers agree on every outcome.
        let cluster = launch(2);
        let mut tm_a = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::MessageFutures);
        let mut tm_b = TxnManager::new(cluster.dc(dc(1)), CommitPolicy::MessageFutures);
        let mk = |label: &str| {
            let mut t = Transaction::new(label);
            t.write("chain", label.to_string());
            t
        };
        let h_a = std::thread::spawn(move || {
            let o1 = tm_a.commit(mk("a1"), TIMEOUT).unwrap();
            (tm_a, o1)
        });
        let h_b = std::thread::spawn(move || {
            let o1 = tm_b.commit(mk("b1"), TIMEOUT).unwrap();
            let o2 = tm_b.commit(mk("b2"), TIMEOUT).unwrap();
            (tm_b, o1, o2)
        });
        let (mut tm_a, _oa) = h_a.join().unwrap();
        let (mut tm_b, _ob1, _ob2) = h_b.join().unwrap();
        // Whatever interleaving happened, the materialized value must
        // converge and the decision counts must agree.
        let deadline = Instant::now() + TIMEOUT;
        loop {
            tm_a.refresh().unwrap();
            tm_b.refresh().unwrap();
            let (ca, aa) = tm_a.stats();
            let (cb, ab) = tm_b.stats();
            let va = tm_a.get_committed("chain").unwrap();
            let vb = tm_b.get_committed("chain").unwrap();
            if ca + aa == 3 && cb + ab == 3 {
                assert_eq!((ca, aa), (cb, ab), "managers disagree on outcomes");
                assert!(ca >= 1, "at least one transaction must commit");
                assert_eq!(va, vb, "values diverged: {va:?} vs {vb:?}");
                break;
            }
            assert!(Instant::now() < deadline, "decisions never completed");
            std::thread::sleep(Duration::from_millis(5));
        }
        cluster.shutdown();
    }

    #[test]
    fn read_write_conflict_aborts_one_side() {
        // t_a reads "cfg" and writes "out"; t_b writes "cfg" concurrently.
        // That is a read-write conflict: at most one commits.
        let cluster = launch(2);
        let mut tm_a = TxnManager::new(cluster.dc(dc(0)), CommitPolicy::MessageFutures);
        let mut tm_b = TxnManager::new(cluster.dc(dc(1)), CommitPolicy::MessageFutures);
        // Seed so the read has something to see.
        let mut seed = Transaction::new("seed");
        seed.write("cfg", "v0");
        tm_a.commit(seed, TIMEOUT).unwrap();
        let deadline = Instant::now() + TIMEOUT;
        while tm_b.get_committed("cfg").unwrap().is_none() {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(3));
        }
        let h_a = std::thread::spawn(move || {
            let mut t = Transaction::new("reader");
            let v = tm_a.read(&mut t, "cfg").unwrap().unwrap();
            t.write("out", format!("derived-from-{v}"));
            tm_a.commit(t, TIMEOUT).unwrap()
        });
        let h_b = std::thread::spawn(move || {
            let mut t = Transaction::new("writer");
            t.write("cfg", "v1");
            tm_b.commit(t, TIMEOUT).unwrap()
        });
        let oa = h_a.join().unwrap();
        let ob = h_b.join().unwrap();
        let commits = [&oa, &ob]
            .iter()
            .filter(|o| matches!(o, Outcome::Committed(_)))
            .count();
        assert!(commits <= 1, "read-write conflicting pair both committed");
        cluster.shutdown();
    }
}
