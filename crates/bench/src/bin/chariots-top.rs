//! `chariots-top`: a refreshing terminal dashboard over a live geo
//! workload.
//!
//! Launches a small multi-datacenter cluster over a simulated WAN, drives
//! paced appends into DC 0, and renders the telemetry collector's live
//! view in place — per-stage throughput, queue depths and other health
//! gauges, rolling latency quantiles, and the newest journal events —
//! until `--duration` elapses.
//!
//! ```sh
//! cargo run --release -p chariots-bench --bin chariots-top -- \
//!     --duration 30 --refresh 500 --dcs 2 --rate 4000
//! ```

use std::time::{Duration, Instant};

use chariots_core::{AutoscaleConfig, Autoscaler, ChariotsCluster, StagePolicy, StageStations};
use chariots_simnet::{
    Collector, CollectorConfig, EventKind, LinkConfig, LiveView, RateLimiter, Shutdown,
    StationConfig,
};
use chariots_types::{ChariotsConfig, DatacenterId, FLStoreConfig, TagSet, TransportMode};

const USAGE: &str = "\
usage: chariots-top [--duration <secs>] [--refresh <ms>] [--dcs <n>] [--rate <appends/s>]
                    [--autoscale] [--transport <simnet|tcp>]
  --duration  how long to run before exiting (default 20)
  --refresh   dashboard refresh interval in ms (default 500)
  --dcs       datacenters in the cluster (default 2)
  --rate      paced append rate into DC 0 (default 4000)
  --autoscale close the autoscaling control plane over the cluster (the
              elastic stages are capped below the append rate so the
              dashboard shows live scale-out/scale-in)
  --transport run the intra-DC hops and FLStore RPCs on in-process simnet
              channels (default) or real TCP loopback sockets; with tcp
              the dashboard grows a chariots.transport.* panel (socket
              B/s, frames/s, reconnects)";

struct Opts {
    duration: Duration,
    refresh: Duration,
    dcs: usize,
    rate: f64,
    autoscale: bool,
    transport: TransportMode,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        duration: Duration::from_secs(20),
        refresh: Duration::from_millis(500),
        dcs: 2,
        rate: 4_000.0,
        autoscale: false,
        transport: TransportMode::Simnet,
    };
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--duration" => {
                opts.duration = Duration::from_secs_f64(parse(&value(&arg, &mut args), &arg))
            }
            "--refresh" => {
                opts.refresh = Duration::from_millis(parse::<u64>(&value(&arg, &mut args), &arg))
            }
            "--dcs" => opts.dcs = parse(&value(&arg, &mut args), &arg),
            "--rate" => opts.rate = parse(&value(&arg, &mut args), &arg),
            "--autoscale" => opts.autoscale = true,
            "--transport" => {
                opts.transport = match value(&arg, &mut args).as_str() {
                    "simnet" => TransportMode::Simnet,
                    "tcp" => TransportMode::Tcp,
                    other => {
                        eprintln!("--transport must be simnet or tcp, got {other}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("could not parse {flag} value {s:?}\n{USAGE}");
        std::process::exit(2);
    })
}

fn main() {
    let opts = parse_opts();

    let mut cfg = ChariotsConfig::new().datacenters(opts.dcs);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(32)
        .gossip_interval(Duration::from_millis(2));
    cfg.batcher_flush_threshold = 16;
    cfg.batcher_flush_interval = Duration::from_millis(2);
    let cfg = cfg.transport(opts.transport);
    let wan = LinkConfig::with_latency(Duration::from_millis(3))
        .jitter(Duration::from_micros(500))
        .seed(7);
    // With --autoscale, cap the elastic stages below the append rate so a
    // single machine falls behind and the control plane visibly acts.
    let stations = if opts.autoscale {
        StageStations {
            batcher: StationConfig::with_rate(opts.rate * 0.6),
            queue: StationConfig::with_rate(opts.rate * 0.6),
            ..StageStations::default()
        }
    } else {
        StageStations::default()
    };
    let cluster = ChariotsCluster::launch(cfg, stations, wan).expect("launch cluster");

    // Paced append client into DC 0; its records propagate to every peer.
    // (Opened before the autoscaler takes the cluster: client handles stay
    // valid across reconfigurations.)
    let shutdown = Shutdown::new();
    let client_thread = {
        let mut client = cluster.client(DatacenterId(0));
        let stop = shutdown.clone();
        let rate = opts.rate;
        std::thread::Builder::new()
            .name("chariots-top-client".into())
            .spawn(move || {
                let mut pacer = RateLimiter::new(rate);
                let mut i = 0u64;
                while !stop.is_signaled() {
                    pacer.pace(1);
                    if client
                        .append_async(TagSet::new(), format!("top{i}"))
                        .is_err()
                    {
                        return;
                    }
                    i += 1;
                }
            })
            .expect("spawn client")
    };

    let window_ticks = 16;
    let deadline = Instant::now() + opts.duration;
    let timeline = if opts.autoscale {
        let handle = Autoscaler::launch(cluster, top_autoscale_cfg());
        while Instant::now() < deadline {
            std::thread::sleep(opts.refresh);
            render(&handle.live(window_ticks, 10));
        }
        shutdown.signal();
        let _ = client_thread.join();
        let outcome = handle.stop();
        outcome.cluster.shutdown();
        println!(
            "\nchariots-top: {} scale-outs, {} scale-ins, {} blocked verdicts",
            outcome.summary.scale_outs(),
            outcome.summary.scale_ins(),
            outcome.summary.blocked
        );
        outcome.timeline
    } else {
        let collector = Collector::spawn(cluster.registries(), CollectorConfig::default());
        while Instant::now() < deadline {
            std::thread::sleep(opts.refresh);
            render(&collector.live(window_ticks, 10));
        }
        shutdown.signal();
        let _ = client_thread.join();
        let timeline = collector.stop();
        cluster.shutdown();
        timeline
    };
    println!(
        "\nchariots-top: {} collector ticks, {} journal events over {:?}",
        timeline.ticks.len(),
        timeline.events.len(),
        opts.duration
    );
}

/// A dashboard-speed autoscaler: sub-second reactions so a 20-second run
/// shows scale-out under the capped stages and scale-in once load drops.
fn top_autoscale_cfg() -> AutoscaleConfig {
    let elastic = StagePolicy {
        min: 1,
        max: 4,
        high_backlog: 200.0,
        high_p99_us: 0.0,
        high_batch: 0.0,
        low_frac: 0.1,
        sustain: 3,
        cooldown: Duration::from_secs(2),
        scale_in: true,
    };
    AutoscaleConfig {
        interval: Duration::from_millis(100),
        batcher: elastic.clone(),
        queue: elastic,
        ..AutoscaleConfig::default()
    }
}

/// Clears the terminal and renders one frame of the dashboard.
fn render(live: &LiveView) {
    // ANSI: clear screen, home cursor.
    print!("\x1b[2J\x1b[H");
    println!(
        "chariots-top — up {:.1}s, {} scrapes @ {:?}",
        live.elapsed.as_secs_f64(),
        live.ticks,
        live.interval
    );

    println!("\nthroughput (rolling, rec/s)");
    let mut rates: Vec<&(String, f64)> = live
        .rates
        .iter()
        .filter(|(k, _)| k.ends_with(".in"))
        .collect();
    rates.sort_by(|a, b| a.0.cmp(&b.0));
    for (key, rate) in rates.iter().take(24) {
        println!("  {key:<36} {rate:>10.0}");
    }

    println!("\nhealth gauges (queue depth / occupancy / lag / backlog)");
    let mut gauges: Vec<&(String, i64)> = live
        .gauges
        .iter()
        .filter(|(k, _)| {
            k.ends_with(".queue.depth")
                || k.ends_with(".occupancy")
                || k.ends_with(".cursor_lag")
                || k.ends_with(".wal.backlog")
                || k.ends_with(".replica.lag")
        })
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    for (key, v) in gauges.iter().take(24) {
        println!("  {key:<36} {v:>10}");
    }

    // Autoscaler machine counts (present only when the control plane is
    // attached).
    let mut machines: Vec<&(String, i64)> = live
        .gauges
        .iter()
        .filter(|(k, _)| k.ends_with(".machines"))
        .collect();
    if !machines.is_empty() {
        machines.sort_by(|a, b| a.0.cmp(&b.0));
        println!("\nmachines (autoscaler)");
        for (key, v) in machines {
            println!("  {key:<36} {v:>10}");
        }
    }

    // Transport counters (populated only on the TCP backend): rolling
    // socket bytes/s, frames/s, and reconnects/s per endpoint.
    let mut transport: Vec<&(String, f64)> = live
        .rates
        .iter()
        .filter(|(k, _)| k.contains(".chariots.transport."))
        .collect();
    if !transport.is_empty() {
        transport.sort_by(|a, b| a.0.cmp(&b.0));
        println!("\ntransport (rolling: B/s, frames/s, reconnects/s)");
        for (key, rate) in transport.iter().take(24) {
            println!("  {key:<52} {rate:>10.0}");
        }
    }

    println!("\nlatency (rolling window, µs)");
    let mut quantiles: Vec<_> = live
        .quantiles
        .iter()
        .filter(|(k, w)| {
            (k.ends_with(".latency_us")
                || k.ends_with(".fsync_us")
                || k.ends_with(".repl_wait_us")
                || k.ends_with(".serialize_us"))
                && w.count() > 0
        })
        .collect();
    quantiles.sort_by(|a, b| a.0.cmp(&b.0));
    println!("  {:<36} {:>8} {:>8} {:>8}", "stage", "n", "p50", "p99");
    for (key, w) in quantiles.iter().take(12) {
        println!(
            "  {key:<36} {:>8} {:>8} {:>8}",
            w.count(),
            w.percentile(0.50),
            w.percentile(0.99)
        );
    }

    println!("\nevents (newest last)");
    if live.events.is_empty() {
        println!("  (none yet)");
    }
    for e in &live.events {
        println!(
            "  [{:>9.3}s] {:<20} {} {}",
            e.at_us as f64 / 1e6,
            e.kind.label(),
            e.source,
            event_detail(&e.kind)
        );
    }
}

/// Human detail text for the reconfiguration events; empty for kinds whose
/// label already says it all.
fn event_detail(kind: &EventKind) -> String {
    match kind {
        EventKind::ScaleOut {
            stage,
            machines,
            signal_milli,
        } => format!(
            "{stage} → {machines} machines (signal {:.2}× watermark)",
            *signal_milli as f64 / 1000.0
        ),
        EventKind::ScaleIn {
            stage,
            machines,
            signal_milli,
        } => format!(
            "{stage} → {machines} machines (signal {:.2}× watermark)",
            *signal_milli as f64 / 1000.0
        ),
        EventKind::EpochChange { boundary } => format!("new epoch from LId {boundary}"),
        EventKind::CompactionSweep {
            segments_deleted,
            segments_rewritten,
            reclaimed_bytes,
        } => format!(
            "{segments_deleted} deleted, {segments_rewritten} rewritten, {reclaimed_bytes} B freed"
        ),
        EventKind::CheckpointWritten {
            upto,
            entries,
            bytes,
        } => format!("{entries} entries to LId {upto} ({bytes} B)"),
        _ => String::new(),
    }
}
