//! The experiment harness: regenerates every table and figure of the
//! Chariots evaluation (§7).
//!
//! ```sh
//! cargo run --release -p chariots-bench --bin harness -- all
//! cargo run --release -p chariots-bench --bin harness -- fig8 --quick
//! ```

use chariots_bench::experiments::{ablations, apps, baseline, fig7, fig8, fig9, tables, txn};

const USAGE: &str = "\
usage: harness [--quick] <experiment>...
experiments:
  fig7       single-maintainer throughput vs target load
  fig8       FLStore scalability with maintainers
  table2     pipeline, one machine per stage
  table3     pipeline, two clients
  table4     pipeline, two clients + two batchers
  table5     pipeline, two machines per stage
  fig9       pipeline throughput time-series
  baseline   FLStore vs CORFU sequencer (ablation A4)
  txn        commit latency vs WAN latency (Message Futures / Helios)
  apps       Hyksos / stream-processing throughput over the log
  ablations  A1/A2 (FLStore knobs), A3 (token policy), A5 (flush threshold)
  all        everything above
--quick trims warmups/windows for smoke runs";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if selected.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let run = |name: &str| match name {
        "fig7" => fig7::run(quick).finish(),
        "fig8" => fig8::run(quick).finish(),
        "table2" => tables::run(2, quick).finish(),
        "table3" => tables::run(3, quick).finish(),
        "table4" => tables::run(4, quick).finish(),
        "table5" => tables::run(5, quick).finish(),
        "fig9" => fig9::run(quick).finish(),
        "baseline" => baseline::run(quick).finish(),
        "txn" => txn::run(quick).finish(),
        "apps" => apps::run(quick).finish(),
        "ablations" => {
            ablations::run_flstore_knobs(quick).finish();
            ablations::run_token_policy(quick).finish();
            ablations::run_flush_threshold(quick).finish();
            ablations::run_sender_scaling(quick).finish();
        }
        other => {
            eprintln!("unknown experiment: {other}\n{USAGE}");
            std::process::exit(2);
        }
    };

    for name in selected {
        if name == "all" {
            for e in [
                "fig7", "fig8", "table2", "table3", "table4", "table5", "fig9", "baseline",
                "txn", "apps", "ablations",
            ] {
                run(e);
            }
        } else {
            run(name);
        }
    }
}
