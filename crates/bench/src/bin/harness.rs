//! The experiment harness: regenerates every table and figure of the
//! Chariots evaluation (§7).
//!
//! ```sh
//! cargo run --release -p chariots-bench --bin harness -- all
//! cargo run --release -p chariots-bench --bin harness -- fig8 --quick
//! cargo run --release -p chariots-bench --bin harness -- --metrics-out /tmp/m.json fig9
//! ```

use std::path::PathBuf;

use chariots_bench::experiments::{
    ablations, apps, availability, baseline, batching, commitpath, elasticity, fig7, fig8, fig9,
    geo, obs, readpath, recovery, tables, txn, wire,
};
use chariots_bench::report::Report;
use chariots_simnet::MetricsSnapshot;
use chariots_types::TransportMode;

const USAGE: &str = "\
usage: harness [--quick] [--smoke] [--transport <simnet|tcp>]
               [--metrics-out <path>] [--timeline-out <path>]
               [--trace-out <path>] <experiment>...
experiments:
  fig7       single-maintainer throughput vs target load
  fig8       FLStore scalability with maintainers
  table2     pipeline, one machine per stage
  table3     pipeline, two clients
  table4     pipeline, two clients + two batchers
  table5     pipeline, two machines per stage
  fig9       pipeline throughput time-series
  baseline   FLStore vs CORFU sequencer (ablation A4)
  availability  append availability and p99 before/during/after a
             maintainer-primary crash (replication factor 2)
  batching   group-commit sweep: throughput/latency vs drain bound and
             WAL sync policy
  commitpath serial fsync-then-replicate vs pipelined quorum commit:
             ack latency, fsync/replication breakdown, and an acked-record
             integrity audit across a forced failover
  readpath   read sweep: scatter-gather batched reads and client caches
             vs per-record reads, plus pushed-down rule lookups
  recovery   restart sweep: flat-WAL full replay vs segmented WAL with
             checkpoints — time-to-serving, replayed bytes, reclaimed
             disk, and an acked-record ledger across the restart
  geo        WAN propagation sweep: cursor-based delta shipping and
             event-driven senders vs full re-offer, on a lossy WAN
  txn        commit latency vs WAN latency (Message Futures / Helios)
  apps       Hyksos / stream-processing throughput over the log
  ablations  A1/A2 (FLStore knobs), A3 (token policy), A5 (flush threshold)
  obs        telemetry collector overhead: throughput with/without 100ms
             scrapes, plus the exportable timeline and Chrome trace
  elasticity flash crowd vs the autoscaling control plane: scale-out
             under load, drain-and-retire after, integrity vs a static
             layout, and the cost of each reconfiguration
  wire       transport head-to-head: the Table-4 workload on simnet
             channels vs real TCP loopback sockets — throughput, append
             latency, bytes/record on the wire, and an acked-(LId, body)
             integrity audit on both backends
  all        everything above
--quick trims warmups/windows for smoke runs
--smoke implies --quick and additionally gates: experiments with a smoke
  check (batching, commitpath, readpath, recovery, geo, obs, elasticity,
  wire) fail the process when the check fails
--transport launches the pipeline experiments (tables 2-5, fig9) on the
  chosen substrate: in-process simnet channels (default) or real TCP
  loopback sockets; recorded in every saved results JSON (the wire
  experiment always runs both backends regardless)
--metrics-out writes the merged metrics registries (counters, gauges,
  per-stage latency histograms) of every selected experiment as JSON
--timeline-out writes the obs (or elasticity) run's collector timeline
  (per-tick counter deltas, gauge samples, rolling quantiles, journal
  events) as JSON
--trace-out writes the obs run's Chrome trace_event JSON (pipeline spans
  + journal events; open in Perfetto or chrome://tracing)";

fn main() {
    let mut quick = false;
    let mut smoke = false;
    let mut metrics_out: Option<PathBuf> = None;
    let mut timeline_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--smoke" => {
                quick = true;
                smoke = true;
            }
            "--transport" => match args.next().as_deref() {
                Some("simnet") => chariots_bench::set_transport(TransportMode::Simnet),
                Some("tcp") => chariots_bench::set_transport(TransportMode::Tcp),
                Some(other) => {
                    eprintln!("--transport must be simnet or tcp, got {other}\n{USAGE}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--transport requires a value\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--metrics-out requires a path\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--timeline-out" => match args.next() {
                Some(path) => timeline_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--timeline-out requires a path\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace-out requires a path\n{USAGE}");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}\n{USAGE}");
                std::process::exit(2);
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let run = |name: &str| -> Vec<Report> {
        match name {
            "fig7" => vec![fig7::run(quick)],
            "fig8" => vec![fig8::run(quick)],
            "table2" => vec![tables::run(2, quick)],
            "table3" => vec![tables::run(3, quick)],
            "table4" => vec![tables::run(4, quick)],
            "table5" => vec![tables::run(5, quick)],
            "fig9" => vec![fig9::run(quick)],
            "baseline" => vec![baseline::run(quick)],
            "availability" => vec![availability::run(quick)],
            "batching" => vec![batching::run(quick)],
            "commitpath" => vec![commitpath::run(quick)],
            "readpath" => vec![readpath::run(quick)],
            "recovery" => vec![recovery::run(quick)],
            "geo" => vec![geo::run(quick)],
            "txn" => vec![txn::run(quick)],
            "apps" => vec![apps::run(quick)],
            "obs" => vec![obs::run(
                quick,
                timeline_out.as_deref(),
                trace_out.as_deref(),
            )],
            "elasticity" => vec![elasticity::run(quick, timeline_out.as_deref())],
            "wire" => vec![wire::run(quick)],
            "ablations" => vec![
                ablations::run_flstore_knobs(quick),
                ablations::run_token_policy(quick),
                ablations::run_flush_threshold(quick),
                ablations::run_sender_scaling(quick),
            ],
            other => {
                eprintln!("unknown experiment: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    };

    let mut merged = MetricsSnapshot::empty("harness");
    let mut smoke_failures = 0usize;
    let mut run_and_collect = |name: &str| {
        for report in run(name) {
            report.finish();
            if smoke {
                let gate = match report.id.as_str() {
                    "batching" => Some(batching::verify_smoke(&report)),
                    "commitpath" => Some(commitpath::verify_smoke(&report)),
                    "readpath" => Some(readpath::verify_smoke(&report)),
                    "recovery" => Some(recovery::verify_smoke(&report)),
                    "geo" => Some(geo::verify_smoke(&report)),
                    "obs" => Some(obs::verify_smoke(&report)),
                    "elasticity" => Some(elasticity::verify_smoke(&report)),
                    "wire" => Some(wire::verify_smoke(&report)),
                    _ => None,
                };
                match gate {
                    Some(Ok(())) => println!("smoke gate [{}]: ok", report.id),
                    Some(Err(e)) => {
                        eprintln!("smoke gate [{}]: FAIL: {e}", report.id);
                        smoke_failures += 1;
                    }
                    None => {}
                }
            }
            if let Some(m) = &report.metrics {
                merged.merge(m);
            }
        }
    };

    for name in &selected {
        if name == "all" {
            for e in [
                "fig7",
                "fig8",
                "table2",
                "table3",
                "table4",
                "table5",
                "fig9",
                "baseline",
                "availability",
                "batching",
                "commitpath",
                "readpath",
                "recovery",
                "geo",
                "txn",
                "apps",
                "ablations",
                "obs",
                "elasticity",
                "wire",
            ] {
                run_and_collect(e);
            }
        } else {
            run_and_collect(name);
        }
    }

    if let Some(path) = metrics_out {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let json = serde_json::to_vec_pretty(&merged).expect("serialize metrics");
        match std::fs::write(&path, json) {
            Ok(()) => println!("metrics: {}", path.display()),
            Err(e) => {
                eprintln!("could not write metrics to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if smoke_failures > 0 {
        eprintln!("{smoke_failures} smoke gate(s) failed");
        std::process::exit(1);
    }
}
