//! Open-loop load generation: paced client threads driving FLStore or the
//! Chariots pipeline at a *target throughput* (the x-axis of Fig. 7).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use chariots_flstore::{AppendPayload, ReplicaGroupHandle};
use chariots_simnet::{Counter, RateLimiter, ServiceStation, Shutdown};
use chariots_types::TagSet;

use crate::RECORD_BYTES;

/// Size of the batches a generator sends per pacing step — amortizes the
/// channel cost exactly like the paper's client library batches appends.
pub const GEN_BATCH: usize = 50;

/// A 512-byte record payload ("the size of each record is 512 Bytes").
pub fn payload() -> AppendPayload {
    AppendPayload::new(TagSet::new(), Bytes::from(vec![0xCD; RECORD_BYTES]))
}

/// Spawns an open-loop generator thread appending to one maintainer at
/// `rate` records/s until `shutdown`. Returns a counter of generated
/// records.
pub fn spawn_flstore_generator(
    target: ReplicaGroupHandle,
    rate: f64,
    shutdown: Shutdown,
) -> (Counter, std::thread::JoinHandle<()>) {
    let generated = Counter::new();
    let counter = generated.clone();
    let handle = std::thread::Builder::new()
        .name("generator".into())
        .spawn(move || {
            let mut limiter = RateLimiter::new(rate);
            while !shutdown.is_signaled() {
                limiter.pace(GEN_BATCH as u64);
                let batch: Vec<AppendPayload> = (0..GEN_BATCH).map(|_| payload()).collect();
                if !target.append_async(batch) {
                    return;
                }
                generated.add(GEN_BATCH as u64);
            }
        })
        .expect("spawn generator");
    (counter, handle)
}

/// A "client machine" for the pipeline experiments (Tables 2–5): it
/// generates records at its own machine rate, but **backs off** when the
/// next stage's backlog grows — the paper's clients are TCP-backpressured,
/// which is why two clients sharing one batcher each achieve roughly half
/// the batcher's throughput (Table 3).
pub struct PipelineClient {
    /// Generated records (the client row of Tables 2–5).
    pub generated: Counter,
}

/// Spawns a pipeline client thread feeding `send` (a closure that enqueues
/// one batch and returns false when the pipeline is gone). `watch` is the
/// downstream station whose backlog triggers backpressure.
pub fn spawn_pipeline_client<F>(
    rate: f64,
    watch: Arc<ServiceStation>,
    shutdown: Shutdown,
    mut send: F,
) -> (PipelineClient, std::thread::JoinHandle<()>)
where
    F: FnMut(usize) -> bool + Send + 'static,
{
    let generated = Counter::new();
    let counter = generated.clone();
    let handle = std::thread::Builder::new()
        .name("pipeline-client".into())
        .spawn(move || {
            let mut limiter = RateLimiter::new(rate);
            while !shutdown.is_signaled() {
                // Backpressure: wait while the downstream machine is
                // drowning.
                while watch.pending() > 2_000 && !shutdown.is_signaled() {
                    std::thread::sleep(Duration::from_micros(200));
                }
                limiter.pace(GEN_BATCH as u64);
                if !send(GEN_BATCH) {
                    return;
                }
                counter.add(GEN_BATCH as u64);
            }
        })
        .expect("spawn pipeline client");
    (PipelineClient { generated }, handle)
}

/// Measures the average rate of `counter` over `duration` after a
/// `warmup`, returning records/second.
pub fn measure_rate(counter: &Counter, warmup: Duration, duration: Duration) -> f64 {
    std::thread::sleep(warmup);
    let start_value = counter.get();
    let start = Instant::now();
    std::thread::sleep(duration);
    let delta = counter.get() - start_value;
    delta as f64 / start.elapsed().as_secs_f64()
}

/// Measures several counters over the same window, returning their rates.
pub fn measure_rates(
    counters: &[(String, Counter)],
    warmup: Duration,
    duration: Duration,
) -> Vec<(String, f64)> {
    std::thread::sleep(warmup);
    let start_values: Vec<u64> = counters.iter().map(|(_, c)| c.get()).collect();
    let start = Instant::now();
    std::thread::sleep(duration);
    let elapsed = start.elapsed().as_secs_f64();
    counters
        .iter()
        .zip(start_values)
        .map(|((name, c), start_value)| (name.clone(), (c.get() - start_value) as f64 / elapsed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_rate_tracks_counter() {
        let c = Counter::new();
        let stop = Shutdown::new();
        let producer = {
            let c = c.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut limiter = RateLimiter::new(10_000.0);
                while !stop.is_signaled() {
                    limiter.pace(100);
                    c.add(100);
                }
            })
        };
        let rate = measure_rate(&c, Duration::from_millis(50), Duration::from_millis(200));
        stop.signal();
        producer.join().unwrap();
        assert!(
            (7_000.0..13_000.0).contains(&rate),
            "expected ~10k, got {rate}"
        );
    }

    #[test]
    fn payload_is_512_bytes() {
        assert_eq!(payload().body.len(), 512);
    }
}
