//! Experiment reporting: ASCII tables on stdout plus machine-readable JSON
//! under `results/` so `EXPERIMENTS.md` is regenerable and diffable.

use std::path::PathBuf;

use chariots_simnet::MetricsSnapshot;
use serde::Serialize;

use crate::SCALE;

/// One experiment's results, ready to print and persist.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Experiment id, e.g. `"fig8"`.
    pub id: String,
    /// Human title, e.g. `"Figure 8: FLStore scalability"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows: label + one value per column.
    pub rows: Vec<Row>,
    /// Bench-scale → paper-scale multiplier used.
    pub scale: f64,
    /// Transport substrate the harness ran on (`--transport`): `"simnet"`
    /// (default), `"tcp"`, or `"simnet+tcp"` for the wire head-to-head.
    pub transport: String,
    /// Free-form notes on what to look for.
    pub notes: Vec<String>,
    /// End-of-run metrics snapshot (counters, gauges, per-stage latency
    /// histograms), when the experiment attached one.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsSnapshot>,
}

/// One row of a report.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Row label (e.g. machine name or parameter value).
    pub label: String,
    /// Values, one per column.
    pub values: Vec<f64>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: Vec<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            columns,
            rows: Vec::new(),
            scale: SCALE,
            transport: crate::transport_name(crate::transport()).to_string(),
            notes: Vec::new(),
            metrics: None,
        }
    }

    /// Adds a row.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Adds a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Attaches an end-of-run metrics snapshot. It rides along in the saved
    /// JSON and feeds the per-stage latency breakdown in [`print`](Self::print).
    pub fn attach_metrics(&mut self, snapshot: MetricsSnapshot) {
        self.metrics = Some(snapshot);
    }

    /// Prints the ASCII table.
    pub fn print(&self) {
        println!("\n=== {} ===", self.title);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap();
        print!("{:label_w$}", "");
        for c in &self.columns {
            print!("  {c:>14}");
        }
        println!();
        for r in &self.rows {
            print!("{:label_w$}", r.label);
            for v in &r.values {
                print!("  {v:>14.1}");
            }
            println!();
        }
        for n in &self.notes {
            println!("note: {n}");
        }
        if let Some(metrics) = &self.metrics {
            print_latency_breakdown(metrics);
        }
    }

    /// Persists the report as JSON under `results/<id>.json` (relative to
    /// the workspace root when run via cargo).
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, serde_json::to_vec_pretty(self).expect("serialize"))?;
        Ok(path)
    }

    /// Prints and saves.
    pub fn finish(&self) {
        self.print();
        match self.save() {
            Ok(path) => println!("saved: {}", path.display()),
            Err(e) => eprintln!("could not save results: {e}"),
        }
    }
}

/// Prints the stage-latency section of an attached snapshot: one line per
/// `*.latency_us` histogram that saw samples, in name order.
fn print_latency_breakdown(metrics: &MetricsSnapshot) {
    let latencies: Vec<_> = metrics
        .histograms
        .iter()
        .filter(|(name, h)| name.ends_with(".latency_us") && h.count > 0)
        .collect();
    if latencies.is_empty() {
        return;
    }
    println!("per-stage latency breakdown (sampled traces, µs):");
    let name_w = latencies.iter().map(|(n, _)| n.len()).max().unwrap_or(8);
    println!(
        "  {:name_w$}  {:>8}  {:>10}  {:>10}  {:>10}",
        "stage", "samples", "p50", "p95", "p99"
    );
    for (name, h) in latencies {
        println!(
            "  {:name_w$}  {:>8}  {:>10}  {:>10}  {:>10}",
            name, h.count, h.p50, h.p95, h.p99
        );
    }
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_to_json() {
        let mut r = Report::new("test", "Test report", vec!["x".into(), "y".into()]);
        r.row("row1", vec![1.0, 2.0]);
        r.note("a note");
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("row1"));
        assert!(json.contains("a note"));
    }

    #[test]
    fn results_dir_is_workspace_relative() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}
