//! # chariots-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! Chariots evaluation (§7), plus the CORFU baseline comparison and the
//! design-choice ablations listed in `DESIGN.md` §4.
//!
//! ## Scale
//!
//! The paper's machines sustain ≈130 K appends/s. To keep every experiment
//! laptop-fast, simulated machines run at **1/10 scale** (≈13 K records/s
//! nominal); the harness multiplies measured rates by [`SCALE`] when
//! printing paper-scale numbers. Shapes — linearity, plateaus, bottleneck
//! locations — are the reproduction target, not absolute values (see
//! `DESIGN.md` §3).
//!
//! Run everything:
//!
//! ```sh
//! cargo run --release -p chariots-bench --bin harness -- all
//! ```

#![warn(missing_docs)]

use std::sync::OnceLock;

use chariots_types::TransportMode;

pub mod experiments;
pub mod report;
pub mod workload;

static TRANSPORT: OnceLock<TransportMode> = OnceLock::new();

/// Selects the transport substrate the pipeline experiments launch their
/// clusters on (the harness's `--transport` flag). First call wins;
/// without it every cluster stays on the simnet oracle.
pub fn set_transport(t: TransportMode) {
    let _ = TRANSPORT.set(t);
}

/// The transport substrate selected for this harness run (default:
/// [`TransportMode::Simnet`]).
pub fn transport() -> TransportMode {
    TRANSPORT.get().copied().unwrap_or_default()
}

/// Short name of a transport mode, as recorded in results JSON.
pub fn transport_name(t: TransportMode) -> &'static str {
    match t {
        TransportMode::Simnet => "simnet",
        TransportMode::Tcp => "tcp",
    }
}

/// Measured rates × `SCALE` ≈ paper-scale rates.
pub const SCALE: f64 = 10.0;

/// Nominal per-machine service rate (records/s) at bench scale, matching
/// the paper's ≈130 K appends/s machines at 1/10 scale.
pub const MACHINE_RATE: f64 = 13_000.0;

/// The private-cloud maintainer rate (paper: ≈131 K appends/s).
pub const PRIVATE_RATE: f64 = 13_100.0;

/// The public-cloud maintainer's *nominal* rate: Fig. 7 peaks near a
/// target of 150 K appends/s.
pub const PUBLIC_RATE: f64 = 15_000.0;

/// Overload degradation of the public-cloud machines: Fig. 7's plateau
/// sits at ≈120 K ≈ 0.8 × the 150 K peak.
pub const PUBLIC_DEGRADATION: f64 = 0.2;

/// Record body size used throughout §7: "the size of each record is 512
/// Bytes".
pub const RECORD_BYTES: usize = 512;

/// Station config for a public-cloud-like machine (with the overload
/// model driving Fig. 7's shape).
pub fn public_station() -> chariots_simnet::StationConfig {
    chariots_simnet::StationConfig::with_rate(PUBLIC_RATE).overload(
        PUBLIC_DEGRADATION,
        1_000,
        8_000,
    )
}

/// Station config for a private-cloud-like machine.
pub fn private_station() -> chariots_simnet::StationConfig {
    chariots_simnet::StationConfig::with_rate(PRIVATE_RATE).overload(0.05, 2_000, 20_000)
}

/// Station config for a Chariots pipeline-stage machine (Tables 2–5): the
/// paper's stages sink ≈120–130 K, with mild degradation under overload
/// (Table 3's batcher drops from 129 K to 126 K; Table 4's filter to
/// 120 K).
pub fn stage_station() -> chariots_simnet::StationConfig {
    chariots_simnet::StationConfig::with_rate(MACHINE_RATE).overload(0.07, 2_000, 20_000)
}
