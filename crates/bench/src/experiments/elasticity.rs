//! Elasticity experiment (`elasticity`): a flash crowd hits a
//! single-datacenter pipeline whose batcher and queue machines are
//! rate-capped, once with the autoscaling control plane closed over the
//! cluster and once with a static (over-provisioned-by-nothing) layout.
//!
//! The load is a diurnal-style three-phase shape — base rate, a spike at
//! 2× the per-machine capacity, base rate again — driven open-loop. The
//! autoscaled run must scale out under the spike, drain-and-retire back
//! down after the cooldown, and lose or duplicate nothing relative to the
//! static run. The table reports, per run, the actuated scale-outs and
//! scale-ins, blocked verdicts, the integrity counts (lost / duplicated
//! records), and the cost of reconfiguring: the worst single-tick
//! throughput dip inside the spike window, the peak queue-stage p99 over
//! baseline, and the time from the end of the spike until the pipeline's
//! backlog drained back under the scale-out watermark.

use std::collections::HashSet;
use std::path::Path;
use std::time::{Duration, Instant};

use chariots_core::{AutoscaleConfig, Autoscaler, ChariotsCluster, StagePolicy, StageStations};
use chariots_simnet::{
    Collector, CollectorConfig, LinkConfig, RateLimiter, StationConfig, Timeline,
};
use chariots_types::{ChariotsConfig, DatacenterId, FLStoreConfig, LId, TagSet};

use crate::report::Report;

/// Per-machine service cap (records/s) on the elastic stages. The spike
/// arrives at 2× this, so a single machine must fall behind.
const STAGE_CAP: f64 = 1_500.0;
/// Backlog watermark the bench policies scale out at (also the drain
/// threshold for the convergence metric).
const HIGH_BACKLOG: f64 = 100.0;

/// The three-phase open-loop load shape.
struct LoadShape {
    base_rate: f64,
    spike_rate: f64,
    base_before: Duration,
    spike: Duration,
    base_after: Duration,
}

impl LoadShape {
    fn new(quick: bool) -> Self {
        LoadShape {
            base_rate: 400.0,
            spike_rate: 2.0 * STAGE_CAP,
            base_before: Duration::from_millis(if quick { 1_000 } else { 2_000 }),
            spike: Duration::from_millis(if quick { 2_500 } else { 5_000 }),
            base_after: Duration::from_millis(if quick { 1_500 } else { 3_000 }),
        }
    }
}

/// What one run hands back for the table.
struct RunResult {
    appended: u64,
    scale_outs: f64,
    scale_ins: f64,
    blocked: f64,
    lost: u64,
    duplicated: u64,
    timeline: Timeline,
    /// Offset of the spike's start/end from the collector's start.
    spike_window: (Duration, Duration),
}

fn pipeline_cfg() -> ChariotsConfig {
    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(16)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 16;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg
}

/// Batcher and queue machines capped at [`STAGE_CAP`]; everything else
/// uncapped so the bottleneck is unambiguous.
fn stations() -> StageStations {
    StageStations {
        batcher: StationConfig::with_rate(STAGE_CAP),
        queue: StationConfig::with_rate(STAGE_CAP),
        ..StageStations::default()
    }
}

/// A bench-speed controller: 25 ms scrapes, 50 ms evaluations, two-round
/// sustain, sub-second cooldowns, scale-in enabled on the capped stages.
/// Filter and maintainer policies stay at their defaults (high watermarks
/// / disabled), so the smoke run exercises exactly the batcher and queue
/// loops.
fn autoscale_cfg() -> AutoscaleConfig {
    let elastic = StagePolicy {
        min: 1,
        max: 4,
        high_backlog: HIGH_BACKLOG,
        high_p99_us: 0.0,
        high_batch: 0.0,
        low_frac: 0.1,
        sustain: 2,
        cooldown: Duration::from_millis(600),
        scale_in: true,
    };
    let mut cfg = AutoscaleConfig {
        interval: Duration::from_millis(50),
        window_ticks: 3,
        alpha: 0.6,
        batcher: elastic.clone(),
        queue: elastic,
        ..AutoscaleConfig::default()
    };
    cfg.collector.interval = Duration::from_millis(25);
    cfg
}

/// Drives the three-phase shape through `client`, returning how many
/// records were appended (open-loop, fire-and-forget).
fn drive(client: &mut chariots_core::ChariotsClient, shape: &LoadShape) -> u64 {
    let mut appended = 0u64;
    for (rate, duration) in [
        (shape.base_rate, shape.base_before),
        (shape.spike_rate, shape.spike),
        (shape.base_rate, shape.base_after),
    ] {
        let mut pacer = RateLimiter::new(rate);
        let end = Instant::now() + duration;
        while Instant::now() < end {
            pacer.pace(1);
            if client
                .append_async(TagSet::new(), format!("e{appended}"))
                .is_ok()
            {
                appended += 1;
            }
        }
    }
    appended
}

/// Reads back the whole log and checks it against the `appended` records
/// this run produced: returns `(lost, duplicated)` counts.
fn integrity(client: &mut chariots_core::ChariotsClient, appended: u64) -> (u64, u64) {
    let hl = client.head_of_log().map(|l| l.0).unwrap_or(0);
    let mut seen: HashSet<(u16, u64)> = HashSet::new();
    let mut reads_ok = 0u64;
    let mut lid = 0u64;
    while lid < hl {
        let chunk: Vec<LId> = (lid..(lid + 256).min(hl)).map(LId).collect();
        lid += chunk.len() as u64;
        for entry in client.read_many(&chunk).into_iter().flatten() {
            reads_ok += 1;
            let r = &entry.record;
            seen.insert((r.host().0, r.toid().as_u64()));
        }
    }
    let expected: HashSet<(u16, u64)> = (1..=appended).map(|t| (0u16, t)).collect();
    let lost = expected.difference(&seen).count() as u64;
    let duplicated = reads_ok - seen.len() as u64;
    (lost, duplicated)
}

/// One autoscaled run: cluster → client → autoscaler → flash crowd →
/// drain → wait for the post-load scale-in → stop and read back.
fn run_autoscaled(shape: &LoadShape) -> RunResult {
    let cluster =
        ChariotsCluster::launch(pipeline_cfg(), stations(), LinkConfig::default()).expect("launch");
    let mut client = cluster.client(DatacenterId(0));
    let handle = Autoscaler::launch(cluster, autoscale_cfg());

    // Tick timestamps count from the collector's start, which is (a few
    // microseconds before) right now.
    let spike_start = shape.base_before;
    let appended = drive(&mut client, shape);
    let spike_end = spike_start + shape.spike;

    // Drain in short slices so the control loop keeps evaluating (and can
    // scale in) while we wait.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let done =
            handle.with_cluster(|c| c.wait_for_replication(appended, Duration::from_millis(20)));
        if done {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "elasticity: autoscaled run never drained ({appended} records)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The backlog is now empty: give the controller until well past its
    // cooldown to actuate the post-crowd scale-in before stopping.
    let scalein = handle
        .registry()
        .counter("chariots.autoscale.scalein.count");
    let deadline = Instant::now() + Duration::from_secs(10);
    while scalein.get() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }

    let (lost, duplicated) = integrity(&mut client, appended);
    let outcome = handle.stop();
    outcome.cluster.shutdown();
    RunResult {
        appended,
        scale_outs: outcome.summary.scale_outs() as f64,
        scale_ins: outcome.summary.scale_ins() as f64,
        blocked: outcome.summary.blocked as f64,
        lost,
        duplicated,
        timeline: outcome.timeline,
        spike_window: (spike_start, spike_end),
    }
}

/// The static control: same shape, same caps, fixed layout; a plain
/// collector produces the comparable timeline.
fn run_static(shape: &LoadShape) -> RunResult {
    let cluster =
        ChariotsCluster::launch(pipeline_cfg(), stations(), LinkConfig::default()).expect("launch");
    let collector = Collector::spawn(
        cluster.registries(),
        CollectorConfig {
            interval: Duration::from_millis(25),
            ..CollectorConfig::default()
        },
    );
    let mut client = cluster.client(DatacenterId(0));

    let spike_start = shape.base_before;
    let appended = drive(&mut client, shape);
    let spike_end = spike_start + shape.spike;

    assert!(
        cluster.wait_for_replication(appended, Duration::from_secs(120)),
        "elasticity: static run never drained ({appended} records)"
    );
    let (lost, duplicated) = integrity(&mut client, appended);
    let timeline = collector.stop();
    cluster.shutdown();
    RunResult {
        appended,
        scale_outs: 0.0,
        scale_ins: 0.0,
        blocked: 0.0,
        lost,
        duplicated,
        timeline,
        spike_window: (spike_start, spike_end),
    }
}

/// Per-tick committed throughput (records/s) from the `dc0.store*.in`
/// counter deltas.
fn tick_rate(tick: &chariots_simnet::TimelineTick, interval_s: f64) -> f64 {
    let committed: u64 = tick
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("dc0.store") && k.ends_with(".in"))
        .map(|(_, v)| *v)
        .sum();
    committed as f64 / interval_s
}

/// Total batcher + queue backlog (health gauges) at a tick.
fn tick_backlog(tick: &chariots_simnet::TimelineTick) -> i64 {
    tick.gauges
        .iter()
        .filter(|(k, _)| {
            (k.starts_with("dc0.batcher") || k.starts_with("dc0.queue"))
                && (k.ends_with(".queue.depth") || k.ends_with(".occupancy"))
        })
        .map(|(_, v)| (*v).max(0))
        .sum()
}

/// The reconfiguration-cost triple mined from a run's timeline:
/// `(dip %, p99 spike µs, converge ms)`.
fn reconfig_cost(timeline: &Timeline, spike: (Duration, Duration)) -> (f64, f64, f64) {
    let interval_s = timeline.interval_us as f64 / 1e6;
    let in_window = |tick: &&chariots_simnet::TimelineTick, lo: Duration, hi: Duration| {
        let at = Duration::from_micros(tick.elapsed_us);
        at >= lo && at < hi
    };
    let (spike_start, spike_end) = spike;

    // Baseline: the first base phase (skipping the first couple of ticks
    // of cold start).
    let warmup = Duration::from_millis(100);
    let base_ticks: Vec<_> = timeline
        .ticks
        .iter()
        .filter(|t| in_window(t, warmup, spike_start))
        .collect();
    let base_p99 = mean(
        base_ticks
            .iter()
            .filter_map(|t| t.quantiles.get("dc0.queue.latency_us"))
            .map(|q| q.p99 as f64),
    );

    // Spike window: worst tick vs the window mean.
    let spike_ticks: Vec<_> = timeline
        .ticks
        .iter()
        .filter(|t| in_window(t, spike_start, spike_end))
        .collect();
    let rates: Vec<f64> = spike_ticks
        .iter()
        .map(|t| tick_rate(t, interval_s))
        .collect();
    let spike_mean = mean(rates.iter().copied());
    let spike_min = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let dip_pct = if spike_mean > 0.0 && spike_min.is_finite() {
        (1.0 - spike_min / spike_mean).max(0.0) * 100.0
    } else {
        0.0
    };

    let peak_p99 = timeline
        .ticks
        .iter()
        .filter_map(|t| t.quantiles.get("dc0.queue.latency_us"))
        .map(|q| q.p99 as f64)
        .fold(0.0, f64::max);
    let p99_spike_us = (peak_p99 - base_p99).max(0.0);

    // Convergence: first tick at/after the end of the spike whose total
    // backlog is back under the scale-out watermark.
    let converge_ms = timeline
        .ticks
        .iter()
        .filter(|t| Duration::from_micros(t.elapsed_us) >= spike_end)
        .find(|t| tick_backlog(t) < HIGH_BACKLOG as i64)
        .map(|t| (Duration::from_micros(t.elapsed_us) - spike_end).as_secs_f64() * 1e3)
        .unwrap_or(f64::NAN);

    (dip_pct, p99_spike_us, converge_ms)
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs the elasticity experiment, optionally exporting the autoscaled
/// run's collector timeline (scale events, machine gauges, backlog).
pub fn run(quick: bool, timeline_out: Option<&Path>) -> Report {
    let shape = LoadShape::new(quick);
    let stat = run_static(&shape);
    let scaled = run_autoscaled(&shape);

    let mut report = Report::new(
        "elasticity",
        "Flash crowd vs the autoscaling control plane (capped batcher/queue stages)",
        vec![
            "scale-outs".into(),
            "scale-ins".into(),
            "blocked".into(),
            "lost".into(),
            "dup".into(),
            "dip (%)".into(),
            "p99 spike (µs)".into(),
            "converge (ms)".into(),
        ],
    );
    for (label, r) in [("static", &stat), ("autoscaled", &scaled)] {
        let (dip, p99_spike, converge) = reconfig_cost(&r.timeline, r.spike_window);
        report.row(
            label,
            vec![
                r.scale_outs,
                r.scale_ins,
                r.blocked,
                r.lost as f64,
                r.duplicated as f64,
                dip,
                p99_spike,
                converge,
            ],
        );
    }
    report.note(format!(
        "three-phase open-loop load on 1 DC: {:.0}/s base, {:.0}/s flash crowd \
         ({}ms) against batcher/queue machines capped at {:.0}/s each; the \
         autoscaled run must scale out under the crowd and drain-and-retire \
         after it passes (static={} autoscaled={} records appended)",
        shape.base_rate,
        shape.spike_rate,
        shape.spike.as_millis(),
        STAGE_CAP,
        stat.appended,
        scaled.appended,
    ));
    report.note(
        "integrity: every run reads its whole log back and checks the \
         (datacenter, TOId) set against what it appended — lost and dup \
         must both be 0 with and without reconfigurations",
    );
    report.note(format!(
        "dip = worst single-tick committed throughput inside the spike \
         window vs that window's mean; p99 spike = peak queue-stage tick \
         p99 over the pre-crowd baseline; converge = spike end → backlog \
         back under the {HIGH_BACKLOG:.0}-record watermark"
    ));
    if let Some(path) = timeline_out {
        super::obs::write_json(path, &scaled.timeline, "elasticity timeline");
    }
    report
}

/// Smoke gate for CI: the autoscaled run must have scaled out under the
/// crowd, scaled back in after it, and neither run may lose or duplicate
/// a record.
pub fn verify_smoke(report: &Report) -> Result<(), String> {
    let find = |label: &str| -> Result<&crate::report::Row, String> {
        report
            .rows
            .iter()
            .find(|r| r.label == label)
            .ok_or_else(|| format!("missing {label} row"))
    };
    let stat = find("static")?;
    let scaled = find("autoscaled")?;
    if scaled.values[0] < 1.0 {
        return Err("the flash crowd triggered no scale-out".into());
    }
    if scaled.values[1] < 1.0 {
        return Err("no scale-in after the crowd passed".into());
    }
    for (label, row) in [("static", stat), ("autoscaled", scaled)] {
        if row.values[3] != 0.0 {
            return Err(format!("{label} run lost {} records", row.values[3]));
        }
        if row.values[4] != 0.0 {
            return Err(format!("{label} run duplicated {} records", row.values[4]));
        }
    }
    Ok(())
}
