//! One module per experiment of §7 (plus the baseline and ablations); each
//! returns a [`Report`](crate::report::Report) the harness prints and
//! saves.

pub mod ablations;
pub mod apps;
pub mod availability;
pub mod baseline;
pub mod batching;
pub mod commitpath;
pub mod elasticity;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod geo;
pub mod obs;
pub mod readpath;
pub mod recovery;
pub mod tables;
pub mod txn;
pub mod wire;
