//! Geo-propagation sweep: cursor-based delta shipping vs the full
//! re-offer baseline, across propagation intervals, on a lossy WAN.
//!
//! The reworked senders keep a per-peer send cursor and ship only records
//! beyond it, falling back to re-offering from the ATable-known cut after
//! a `retransmit_timeout` stall; rounds are event-driven (queues and
//! receivers wake the senders), with the propagation interval demoted to a
//! gossip heartbeat floor. The baseline (`sender_delta_shipping = false`)
//! restores the original policy: every round re-offers the peer's whole
//! unacknowledged window, paced purely by the interval.
//!
//! Each run pushes a paced append stream through DC 0 of a two-datacenter
//! cluster over a WAN with latency, jitter, duplication, and drops, and
//! reports: committed throughput, WAN bytes per committed record, the
//! duplicate ratio observed at the destination's filters, cross-DC
//! visibility latency (append at DC 0 → applied cut at DC 1), and
//! timeout-triggered retransmissions.

use std::time::{Duration, Instant};

use chariots_core::{ChariotsCluster, StageStations};
use chariots_simnet::{Histogram, LinkConfig, MetricsSnapshot, RateLimiter};
use chariots_types::{ChariotsConfig, DatacenterId, FLStoreConfig, TOId, TagSet};

use crate::report::Report;

/// Every k-th append is timed for visibility latency.
const SAMPLE_EVERY: u64 = 8;
/// Visibility poll granularity.
const VIS_POLL: Duration = Duration::from_micros(200);

struct RunResult {
    committed_per_s: f64,
    wan_bytes_per_record: f64,
    dup_ratio: f64,
    vis_p50_ms: f64,
    vis_p99_ms: f64,
    retransmits: f64,
}

fn run_one(
    delta: bool,
    interval: Duration,
    records: u64,
    rate: f64,
) -> (RunResult, MetricsSnapshot) {
    let mut cfg = ChariotsConfig::new().datacenters(2);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(16)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 4;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg.propagation_interval = interval;
    cfg.sender_delta_shipping = delta;
    cfg.retransmit_timeout = Duration::from_millis(50);
    // A lossy, jittery WAN: drops force the healing path, duplicates feed
    // the destination filters' dedup counters.
    let wan = LinkConfig::with_latency(Duration::from_millis(3))
        .jitter(Duration::from_micros(500))
        .duplicate_prob(0.02)
        .drop_prob(0.02)
        .seed(11);
    let cluster = ChariotsCluster::launch(cfg, StageStations::default(), wan).expect("launch");

    let src = DatacenterId(0);
    let dst = DatacenterId(1);
    let dst_atable = cluster.dc(dst).atable();

    // Visibility watcher: for each sampled record, the time from the
    // append submission at DC 0 until DC 1's applied cut covers its TOId
    // (row `dst` of DC 1's own ATable — raised when DC 1's queues commit
    // the record, i.e. when it becomes readable there).
    let (vis_tx, vis_rx) = crossbeam::channel::unbounded::<(TOId, Instant)>();
    let vis_hist = Histogram::new();
    let watcher = {
        let hist = vis_hist.clone();
        let atable = std::sync::Arc::clone(&dst_atable);
        std::thread::Builder::new()
            .name("geo-visibility".into())
            .spawn(move || {
                // Samples arrive in TOId order, so waiting sequentially
                // never misses one (the cut is monotone).
                for (toid, t0) in vis_rx {
                    while atable.read().get(dst, src) < toid {
                        std::thread::sleep(VIS_POLL);
                    }
                    hist.record_duration(t0.elapsed());
                }
            })
            .expect("spawn visibility watcher")
    };

    // Paced open-loop appends at DC 0. The single client's appends reach
    // the queues in order, so record i is assigned TOId i+1.
    let mut client = cluster.client(src);
    let mut pacer = RateLimiter::new(rate);
    let m0 = cluster.metrics();
    let t0 = Instant::now();
    for i in 0..records {
        pacer.pace(1);
        let submitted = Instant::now();
        client
            .append_async(TagSet::new(), format!("geo{i}"))
            .expect("append");
        if i % SAMPLE_EVERY == 0 {
            let _ = vis_tx.send((TOId(i + 1), submitted));
        }
    }
    drop(vis_tx);
    assert!(
        cluster.wait_for_replication(records, Duration::from_secs(60)),
        "geo run never converged (delta={delta}, interval={interval:?})"
    );
    let elapsed = t0.elapsed().as_secs_f64();
    watcher.join().expect("visibility watcher");
    let m1 = cluster.metrics();

    let delta_of = |name: &str| -> u64 {
        let b = m0.counters.get(name).copied().unwrap_or(0);
        let a = m1.counters.get(name).copied().unwrap_or(0);
        a.saturating_sub(b)
    };
    // Both directions count: DC 0 ships records, DC 1 ships the ack
    // gossip that completes the loop.
    let wan_bytes = delta_of("dc0.chariots.wan.bytes") + delta_of("dc1.chariots.wan.bytes");
    let retransmits =
        delta_of("dc0.chariots.wan.retransmits") + delta_of("dc1.chariots.wan.retransmits");
    // Duplicates dropped at the destination's filters, per committed
    // record: redundant WAN deliveries (link duplication + re-offers).
    let dups: u64 = m1
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("dc1.filter") && name.ends_with(".dups"))
        .map(|(_, v)| *v)
        .sum();

    let result = RunResult {
        committed_per_s: records as f64 / elapsed,
        wan_bytes_per_record: wan_bytes as f64 / records as f64,
        dup_ratio: dups as f64 / records as f64,
        vis_p50_ms: vis_hist.percentile(0.50) as f64 / 1_000.0,
        vis_p99_ms: vis_hist.percentile(0.99) as f64 / 1_000.0,
        retransmits: retransmits as f64,
    };
    cluster.shutdown();
    (result, m1)
}

/// Runs the geo-propagation sweep. `quick` trims sizes and the interval
/// grid.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "geo",
        "WAN propagation: delta shipping + event-driven senders vs full re-offer",
        vec![
            "committed/s".into(),
            "WAN B/rec".into(),
            "dup ratio".into(),
            "vis p50 (ms)".into(),
            "vis p99 (ms)".into(),
            "retransmits".into(),
        ],
    );
    let (records, rate) = if quick {
        (600, 3_000.0)
    } else {
        (2_400, 6_000.0)
    };
    let intervals: &[u64] = if quick { &[5] } else { &[2, 5, 20] };

    let mut last_metrics = None;
    for &ms in intervals {
        for delta in [false, true] {
            let policy = if delta { "delta" } else { "full" };
            let (r, metrics) = run_one(delta, Duration::from_millis(ms), records, rate);
            if delta {
                // The artifact the CI job uploads: the delta-policy run's
                // full registry, chariots.wan.* counters included.
                last_metrics = Some(metrics);
            }
            report.row(
                format!("{policy} interval={ms}ms"),
                vec![
                    r.committed_per_s,
                    r.wan_bytes_per_record,
                    r.dup_ratio,
                    r.vis_p50_ms,
                    r.vis_p99_ms,
                    r.retransmits,
                ],
            );
        }
    }

    report.note(format!(
        "{records} paced appends at DC 0 of a 2-DC cluster; WAN 3ms ±0.5ms \
         with 2% duplication and 2% drops; retransmit_timeout 50ms. \
         WAN B/rec sums both directions' chariots.wan.bytes (records + ack \
         gossip) over committed records; dup ratio is duplicates dropped at \
         DC 1's filters per committed record; visibility is append submit \
         at DC 0 until DC 1's applied cut covers the record's TOId"
    ));
    report.note(
        "full re-offers the peer's entire unacknowledged window every \
         interval, so its WAN bytes and filter duplicates grow with the \
         in-flight window; delta ships each record once per healthy peer \
         and re-offers only after a retransmit_timeout stall, with \
         event-driven rounds keeping visibility flat as the heartbeat \
         interval grows",
    );
    if let Some(m) = last_metrics {
        report.attach_metrics(m);
    }
    report
}

/// Smoke gate for CI: delta shipping must cut WAN bytes per committed
/// record and the destination-filter duplicate ratio versus the full
/// re-offer baseline at the same interval, without losing committed
/// throughput or median visibility.
///
/// The floors are lenient — smoke runs are short and share CI machines —
/// and exist to catch the delta path regressing to re-offer behavior, not
/// to benchmark the runner.
pub fn verify_smoke(report: &Report) -> Result<(), String> {
    let find = |needle: &str| -> Option<&crate::report::Row> {
        report.rows.iter().find(|r| r.label.starts_with(needle))
    };
    let full = find("full interval=").ok_or("missing full-policy row")?;
    let delta = find("delta interval=").ok_or("missing delta-policy row")?;

    if full.values[0] <= 0.0 || delta.values[0] <= 0.0 {
        return Err("a run committed no records".into());
    }
    let (full_bpr, delta_bpr) = (full.values[1], delta.values[1]);
    if delta_bpr >= full_bpr * 0.7 {
        return Err(format!(
            "delta shipped {delta_bpr:.0} WAN B/rec vs full {full_bpr:.0} — \
             expected at least a 30% cut"
        ));
    }
    let (full_dup, delta_dup) = (full.values[2], delta.values[2]);
    if delta_dup > full_dup {
        return Err(format!(
            "delta duplicate ratio {delta_dup:.3} exceeds full {full_dup:.3} — \
             cursors are re-offering records the peer already has"
        ));
    }
    let (full_p50, delta_p50) = (full.values[3], delta.values[3]);
    if delta_p50 > full_p50 * 1.5 + 2.0 {
        return Err(format!(
            "delta visibility p50 {delta_p50:.1}ms vs full {full_p50:.1}ms — \
             event-driven rounds should not cost median latency"
        ));
    }
    Ok(())
}
