//! Baseline: post-assignment (FLStore) vs a CORFU-style centralized
//! sequencer — the paper's motivating comparison (§1, §2.1) and ablation
//! A4.
//!
//! Both systems get the same storage fleet; CORFU additionally pays one
//! sequencer interaction per append. However many storage units are added,
//! CORFU's total throughput is capped by the sequencer machine, while
//! FLStore keeps scaling.

use std::time::Duration;

use chariots_corfu::CorfuLog;
use chariots_flstore::FLStore;
use chariots_simnet::{MetricsSnapshot, Shutdown};
use chariots_types::{DatacenterId, FLStoreConfig};

use crate::report::Report;
use crate::workload::spawn_flstore_generator;
use crate::{private_station, RECORD_BYTES, SCALE};

/// Runs the comparison sweep.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "baseline",
        "Baseline: FLStore (post-assignment) vs CORFU-style sequencer (pre-assignment)",
        vec!["FLStore rec/s".into(), "CORFU rec/s".into()],
    );
    let (warmup, window) = if quick {
        (Duration::from_millis(200), Duration::from_millis(500))
    } else {
        (Duration::from_millis(300), Duration::from_millis(1000))
    };
    let max_m = if quick { 4 } else { 8 };

    let mut metrics = MetricsSnapshot::empty("baseline");
    for m in 1..=max_m {
        // FLStore at matched load (slightly below per-machine capacity).
        let store = FLStore::launch_with(
            DatacenterId(0),
            FLStoreConfig::new()
                .maintainers(m)
                .batch_size(100)
                .gossip_interval(Duration::from_millis(5)),
            private_station(),
            None,
        )
        .expect("launch flstore");
        let shutdown = Shutdown::new();
        let mut gens = Vec::new();
        for maintainer in store.maintainers() {
            gens.push(spawn_flstore_generator(
                maintainer.clone(),
                12_500.0,
                shutdown.clone(),
            ));
        }
        let counters: Vec<_> = store
            .maintainers()
            .iter()
            .map(|h| h.appended_counter())
            .collect();
        std::thread::sleep(warmup);
        let s0: u64 = counters.iter().map(|c| c.get()).sum();
        let t0 = std::time::Instant::now();
        std::thread::sleep(window);
        let flstore_rate = (counters.iter().map(|c| c.get()).sum::<u64>() - s0) as f64
            / t0.elapsed().as_secs_f64();
        shutdown.signal();
        for (_, h) in gens {
            let _ = h.join();
        }
        metrics.merge(&store.metrics());
        store.shutdown();

        // CORFU: same number of storage units, one sequencer machine of
        // the same class. Clients are synchronous (the CORFU protocol is
        // client-driven), so run enough of them to saturate.
        let corfu = CorfuLog::launch(m, private_station(), private_station());
        let stop = Shutdown::new();
        let mut client_threads = Vec::new();
        for _ in 0..(2 * m).max(4) {
            let client = corfu.client();
            let stop = stop.clone();
            client_threads.push(std::thread::spawn(move || {
                let body = vec![0xCD; RECORD_BYTES];
                while !stop.is_signaled() {
                    if client.append(body.clone()).is_err() {
                        return;
                    }
                }
            }));
        }
        let writes: Vec<_> = corfu.units().iter().map(|u| u.writes_counter()).collect();
        std::thread::sleep(warmup);
        let s0: u64 = writes.iter().map(|c| c.get()).sum();
        let t0 = std::time::Instant::now();
        std::thread::sleep(window);
        let corfu_rate =
            (writes.iter().map(|c| c.get()).sum::<u64>() - s0) as f64 / t0.elapsed().as_secs_f64();
        stop.signal();
        for t in client_threads {
            let _ = t.join();
        }
        metrics.merge(&corfu.metrics());
        corfu.shutdown();

        report.row(
            format!("{m} storage machine(s)"),
            vec![flstore_rate, corfu_rate],
        );
    }
    report.note(
        "expect: FLStore scales ~linearly with machines; CORFU flattens at \
         the sequencer's capacity no matter how many units are added",
    );
    report.note(format!("multiply by {SCALE} for paper-scale rates"));
    report.attach_metrics(metrics);
    report
}
