//! Tables 2–5: per-machine throughput of the Chariots pipeline under four
//! deployment shapes.
//!
//! The paper's stage naming for the table rows: *Client*, *Batcher*,
//! *Filter*, *Maintainer*, *Store*. In our pipeline, the table's
//! "Maintainer" row is the queues stage (the machines that assign `LId`s
//! and designate maintainers) and "Store" is the FLStore log maintainer —
//! the mapping is recorded in `EXPERIMENTS.md`.
//!
//! * **Table 2** — one machine per stage: everything runs at the client's
//!   generation rate (client-limited).
//! * **Table 3** — two clients: the single batcher becomes the bottleneck;
//!   backpressure halves each client.
//! * **Table 4** — two clients + two batchers: the bottleneck moves to the
//!   filter.
//! * **Table 5** — two machines per stage: every stage's aggregate doubles.

use std::time::Duration;

use bytes::Bytes;
use chariots_core::{ChariotsCluster, Incoming, LocalAppend, StageStations};
use chariots_simnet::{LinkConfig, MetricsSnapshot, Shutdown};
use chariots_types::{
    ChariotsConfig, DatacenterId, FLStoreConfig, StageCounts, TagSet, VersionVector,
};

use crate::report::Report;
use crate::workload::{measure_rates, spawn_pipeline_client, GEN_BATCH};
use crate::{stage_station, MACHINE_RATE, RECORD_BYTES};

/// A pipeline deployment shape: machines per stage.
pub struct Shape {
    /// Number of client (generator) machines.
    pub clients: usize,
    /// Batcher machines.
    pub batchers: usize,
    /// Filter machines.
    pub filters: usize,
    /// Queue machines (the table's "Maintainer" row).
    pub queues: usize,
    /// Log maintainers (the table's "Store" row).
    pub stores: usize,
}

/// The shapes of Tables 2–5.
pub fn table_shape(table: u8) -> Shape {
    match table {
        2 => Shape {
            clients: 1,
            batchers: 1,
            filters: 1,
            queues: 1,
            stores: 1,
        },
        3 => Shape {
            clients: 2,
            batchers: 1,
            filters: 1,
            queues: 1,
            stores: 1,
        },
        4 => Shape {
            clients: 2,
            batchers: 2,
            filters: 1,
            queues: 1,
            stores: 1,
        },
        5 => Shape {
            clients: 2,
            batchers: 2,
            filters: 2,
            queues: 2,
            stores: 2,
        },
        _ => panic!("tables 2–5 only"),
    }
}

/// Launches the pipeline for a shape and measures per-machine rates over
/// the window. Returns `(name, rate)` rows — clients first, then each
/// pipeline machine — plus the deployment's end-of-run metrics snapshot.
pub fn run_shape(
    shape: &Shape,
    warmup: Duration,
    window: Duration,
) -> (Vec<(String, f64)>, MetricsSnapshot) {
    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.stages = StageCounts {
        receivers: 1,
        batchers: shape.batchers,
        filters: shape.filters,
        queues: shape.queues,
        senders: 1,
    };
    cfg.flstore = FLStoreConfig::new()
        .maintainers(shape.stores)
        .batch_size(100)
        .gossip_interval(Duration::from_millis(5));
    cfg.batcher_flush_threshold = GEN_BATCH;
    cfg.batcher_flush_interval = Duration::from_millis(2);
    // `--transport tcp` moves every intra-DC hop (and the FLStore RPCs)
    // onto real loopback sockets; the default stays on the simnet oracle.
    let cfg = cfg.transport(crate::transport());

    let stations = StageStations {
        batcher: stage_station(),
        filter: stage_station(),
        queue: stage_station(),
        store: stage_station(),
        sender: stage_station(),
        receiver: stage_station(),
    };
    let cluster =
        ChariotsCluster::launch(cfg, stations, LinkConfig::default()).expect("launch pipeline");
    let dc = cluster.dc(DatacenterId(0));
    let batchers = dc.batcher_handles();

    // Client machines: each generates at its own machine rate, pinned to a
    // batcher (i mod B), backpressured by that batcher's backlog.
    let shutdown = Shutdown::new();
    let mut client_counters = Vec::new();
    let mut client_threads = Vec::new();
    for c in 0..shape.clients {
        let batcher = batchers[c % batchers.len()].clone();
        let watch = batcher.station();
        let (client, thread) =
            spawn_pipeline_client(MACHINE_RATE * 0.99, watch, shutdown.clone(), move |n| {
                for _ in 0..n {
                    let ok = batcher.send(Incoming::Local(LocalAppend {
                        tags: TagSet::new(),
                        body: Bytes::from(vec![0xCD; RECORD_BYTES]),
                        deps: VersionVector::new(1),
                        reply: None,
                        trace: None,
                    }));
                    if !ok {
                        return false;
                    }
                }
                true
            });
        client_counters.push((format!("client-{c}"), client.generated));
        client_threads.push(thread);
    }

    let mut counters = client_counters;
    counters.extend(dc.stage_counters());
    let rates = measure_rates(&counters, warmup, window);
    shutdown.signal();
    for t in client_threads {
        let _ = t.join();
    }
    let metrics = cluster.metrics();
    cluster.shutdown();
    let rows = rates
        .into_iter()
        .filter(|(name, _)| !name.starts_with("sender") && !name.starts_with("receiver"))
        .collect();
    (rows, metrics)
}

/// Runs one of Tables 2–5.
pub fn run(table: u8, quick: bool) -> Report {
    let (warmup, window) = if quick {
        (Duration::from_millis(300), Duration::from_millis(800))
    } else {
        (Duration::from_millis(500), Duration::from_secs(2))
    };
    let shape = table_shape(table);
    let title = match table {
        2 => "Table 2: one machine per stage",
        3 => "Table 3: two clients, one machine elsewhere",
        4 => "Table 4: two clients, two batchers",
        5 => "Table 5: two machines per stage",
        _ => unreachable!(),
    };
    let mut report = Report::new(
        format!("table{table}"),
        title,
        vec!["rec/s (bench)".into(), "Krec/s (paper-scale)".into()],
    );
    let (rows, metrics) = run_shape(&shape, warmup, window);
    for (name, rate) in rows {
        report.row(
            display_name(&name),
            vec![rate, rate * crate::SCALE / 1000.0],
        );
    }
    report.attach_metrics(metrics);
    report.note(match table {
        2 => "expect: all machines ≈ the client rate (client-limited; paper: 124–132K)",
        3 => "expect: batcher saturates; clients halve under backpressure (paper: 126K batcher, 64.5/64.9K clients)",
        4 => "expect: batchers relieved; the single filter becomes the bottleneck (paper: 120K filter)",
        5 => "expect: every stage's aggregate doubles vs table 2 (paper: 115–132K per machine)",
        _ => unreachable!(),
    });
    report
}

fn display_name(internal: &str) -> String {
    // Map internal stage names onto the paper's table rows.
    if let Some(rest) = internal.strip_prefix("queue-") {
        format!("Maintainer-{rest} (queue)")
    } else if let Some(rest) = internal.strip_prefix("store-") {
        format!("Store-{rest} (log maintainer)")
    } else {
        let mut c = internal.chars();
        match c.next() {
            Some(first) => first.to_uppercase().collect::<String>() + c.as_str(),
            None => String::new(),
        }
    }
}
