//! Group-commit batching sweep: append throughput and latency as a
//! function of the maintainer's drain bound (`max_batch_records`) and WAL
//! sync policy.
//!
//! The maintainer node amortizes three per-request costs across a drained
//! batch: the WAL flush+fsync, the synchronous replication round trip to
//! each backup, and the station admission. This experiment drives a
//! replicated, WAL-backed single-maintainer deployment with closed-loop
//! clients and sweeps the drain bound — bound 1 disables coalescing
//! entirely, so the `batch=1` row is the pre-batching engine. The signature
//! shape is throughput growing with the bound while WAL syncs per acked
//! record collapse; `PerRecord` at the widest bound shows what the fsync
//! amortization alone is worth, `Never` bounds it from above.

use std::time::{Duration, Instant};

use chariots_flstore::FLStore;
use chariots_simnet::{Counter, Histogram, MetricsSnapshot, Shutdown, StationConfig, TestDir};
use chariots_types::{DatacenterId, FLStoreConfig, WalSyncPolicy};

use crate::report::Report;

/// Closed-loop append workers. Each keeps one single-record append in
/// flight, so the drain loop sees up to this many coalescable requests —
/// the effective batch depth of the run.
const WORKERS: usize = 16;

/// One swept configuration.
struct RunSpec {
    bound: usize,
    policy: WalSyncPolicy,
}

fn policy_name(p: WalSyncPolicy) -> &'static str {
    match p {
        WalSyncPolicy::PerBatch => "per-batch",
        WalSyncPolicy::PerRecord => "per-record",
        WalSyncPolicy::Never => "never",
    }
}

/// Measured outcome of one run.
struct RunResult {
    rate: f64,
    p50_us: f64,
    p99_us: f64,
    wal_syncs: u64,
    syncs_per_record: f64,
}

fn run_one(spec: &RunSpec, measure: Duration, warmup: Duration) -> (RunResult, MetricsSnapshot) {
    let dir = TestDir::new("chariots-batching");
    let cfg = FLStoreConfig::new()
        .maintainers(1)
        .batch_size(1_000)
        .replication(2)
        .gossip_interval(Duration::from_millis(5))
        .max_batch_records(spec.bound)
        .wal_sync_policy(spec.policy);
    // Uncapped stations: the costs under study (fsync, replication round
    // trips) are real, not simulated, so station pacing would only mask
    // the amortization being measured.
    let store = FLStore::launch_with(
        DatacenterId(0),
        cfg,
        StationConfig::uncapped(),
        Some(dir.path().to_path_buf()),
    )
    .expect("launch");

    let shutdown = Shutdown::new();
    let acked = Counter::new();
    let latency = Histogram::new();
    let measuring = Counter::new(); // 0 = warmup, 1 = measuring
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let group = store.maintainers()[0].clone();
        let shutdown = shutdown.clone();
        let acked = acked.clone();
        let latency = latency.clone();
        let measuring = measuring.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("batching-client-{w}"))
                .spawn(move || {
                    while !shutdown.is_signaled() {
                        let t0 = Instant::now();
                        let ok = group.append(vec![crate::workload::payload()]).is_ok();
                        if ok && measuring.get() > 0 {
                            acked.add(1);
                            latency.record_duration(t0.elapsed());
                        }
                    }
                })
                .expect("spawn batching client"),
        );
    }

    std::thread::sleep(warmup);
    // Count WAL syncs over the measured window only, so syncs/record is an
    // honest per-policy figure rather than diluted by the warmup.
    let syncs_at_start = wal_syncs(&store.metrics());
    measuring.add(1);
    std::thread::sleep(measure);
    shutdown.signal();
    for w in workers {
        let _ = w.join();
    }

    let snapshot = store.metrics();
    let wal_syncs = wal_syncs(&snapshot).saturating_sub(syncs_at_start);
    let total = acked.get();
    let result = RunResult {
        rate: total as f64 / measure.as_secs_f64(),
        p50_us: latency.percentile(0.50) as f64,
        p99_us: latency.percentile(0.99) as f64,
        wal_syncs,
        syncs_per_record: if total == 0 {
            0.0
        } else {
            wal_syncs as f64 / total as f64
        },
    };
    store.shutdown();
    (result, snapshot)
}

fn wal_syncs(snapshot: &MetricsSnapshot) -> u64 {
    snapshot
        .counters
        .get("dc0.flstore.wal.sync.count")
        .copied()
        .unwrap_or(0)
}

/// Runs the batching sweep. `quick` trims the bounds and windows.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "batching",
        "Group commit: append throughput vs drain bound and WAL sync policy",
        vec![
            "appends/s".into(),
            "p50 (µs)".into(),
            "p99 (µs)".into(),
            "wal syncs".into(),
            "syncs/record".into(),
        ],
    );
    let (measure, warmup) = if quick {
        (Duration::from_millis(400), Duration::from_millis(150))
    } else {
        (Duration::from_millis(1_200), Duration::from_millis(300))
    };
    let bounds: &[usize] = if quick { &[1, 64] } else { &[1, 8, 64, 512] };

    let mut specs: Vec<RunSpec> = bounds
        .iter()
        .map(|&bound| RunSpec {
            bound,
            policy: WalSyncPolicy::PerBatch,
        })
        .collect();
    // Policy ablation at the widest swept bound: PerRecord isolates the
    // fsync amortization (everything else still batches), Never bounds the
    // win from above by dropping durability.
    let widest = *bounds.last().unwrap();
    for policy in [WalSyncPolicy::PerRecord, WalSyncPolicy::Never] {
        specs.push(RunSpec {
            bound: widest,
            policy,
        });
    }

    let mut merged = MetricsSnapshot::empty("batching");
    let mut baseline_rate = None;
    let mut widest_rate = None;
    for spec in &specs {
        let (r, snapshot) = run_one(spec, measure, warmup);
        merged.merge(&snapshot);
        if spec.policy == WalSyncPolicy::PerBatch {
            if spec.bound == 1 {
                baseline_rate = Some(r.rate);
            }
            if spec.bound == widest {
                widest_rate = Some(r.rate);
            }
        }
        report.row(
            format!("batch={} sync={}", spec.bound, policy_name(spec.policy)),
            vec![
                r.rate,
                r.p50_us,
                r.p99_us,
                r.wal_syncs as f64,
                r.syncs_per_record,
            ],
        );
    }

    if let (Some(base), Some(wide)) = (baseline_rate, widest_rate) {
        let ratio = if base > 0.0 { wide / base } else { 0.0 };
        report.note(format!(
            "group-commit speedup (per-batch, bound {widest} vs 1): {ratio:.2}x — \
             expect ≥2x: bound 1 pays one fsync and one replication round \
             trip per record, the wide bound amortizes both across the drain"
        ));
    }
    report.note(format!(
        "{WORKERS} closed-loop clients, single-record appends, replication \
         factor 2, WAL-backed; syncs/record counts primary+backup fsyncs \
         over the measured window (dc0.flstore.wal.sync.count)"
    ));
    report.attach_metrics(merged);
    report
}

/// Smoke gate for CI: the widest per-batch bound must beat the
/// coalescing-disabled baseline by a sane margin, and the sync policies
/// must order as designed (per-record pays the most fsyncs per record,
/// never pays none).
///
/// The threshold is deliberately below the ≥2x the full experiment
/// demonstrates: smoke runs use short windows on shared CI machines, and
/// the gate is here to catch the amortization breaking outright (a
/// regression to per-record serving), not to benchmark the runner.
pub fn verify_smoke(report: &Report) -> Result<(), String> {
    let rate_of = |needle: &str| -> Option<f64> {
        report
            .rows
            .iter()
            .find(|r| r.label == needle)
            .and_then(|r| r.values.first().copied())
    };
    let syncs_per_record_of = |needle: &str| -> Option<f64> {
        report
            .rows
            .iter()
            .find(|r| r.label == needle)
            .and_then(|r| r.values.get(4).copied())
    };
    let base = rate_of("batch=1 sync=per-batch")
        .ok_or_else(|| "missing batch=1 per-batch row".to_string())?;
    let wide_label = report
        .rows
        .iter()
        .rfind(|r| r.label.ends_with("sync=per-batch"))
        .map(|r| r.label.clone())
        .ok_or_else(|| "missing per-batch rows".to_string())?;
    let wide = rate_of(&wide_label).unwrap_or(0.0);
    if base <= 0.0 {
        return Err("baseline rate is zero — no appends were acked".into());
    }
    let ratio = wide / base;
    if ratio < 1.5 {
        return Err(format!(
            "group-commit speedup {ratio:.2}x ({wide_label} = {wide:.0}/s vs \
             batch=1 = {base:.0}/s) below the 1.5x smoke floor"
        ));
    }
    let per_record = syncs_per_record_of(&format!(
        "{} sync=per-record",
        wide_label.split_whitespace().next().unwrap_or("")
    ));
    let per_batch = syncs_per_record_of(&wide_label);
    if let (Some(rec), Some(batch)) = (per_record, per_batch) {
        if rec < batch {
            return Err(format!(
                "per-record policy fsynced less per record ({rec:.3}) than \
                 per-batch ({batch:.3}) — sync accounting is broken"
            ));
        }
    }
    let never = syncs_per_record_of(&format!(
        "{} sync=never",
        wide_label.split_whitespace().next().unwrap_or("")
    ));
    if let Some(n) = never {
        if n > 0.0 {
            return Err(format!("sync=never recorded {n:.3} fsyncs per record"));
        }
    }
    Ok(())
}
