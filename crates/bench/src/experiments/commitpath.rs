//! Commit-path sweep: serial fsync-then-replicate vs the pipelined
//! quorum commit, across replication factors and WAL sync policies.
//!
//! The serial chain pays the primary's WAL fsync and the backup
//! replication round trips back to back; the pipelined path ships the
//! batch to the backups *first*, pays the primary's fsync while those
//! RPCs are in flight, and acks as soon as f+1 replicas are durable. The
//! ack latency should therefore drop from `fsync + replication` to
//! roughly `max(fsync, replication)` — the per-row fsync/replication-wait
//! breakdown (from `dc0.flstore.commit.fsync_us` and
//! `dc0.flstore.commit.repl_wait_us`) shows which leg dominated.
//!
//! Every run appends unique bodies and, before tearing the store down,
//! reads every acked `(LId, body)` pair back — the `lost` and `dup`
//! columns are the durability ledger, and both must be zero even on the
//! `+failover` rows, which crash the primary in the middle of the
//! measured window and let the monitor promote a backup under load.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use chariots_flstore::{AppendPayload, FLStore};
use chariots_simnet::{Counter, Histogram, MetricsSnapshot, Shutdown, StationConfig, TestDir};
use chariots_types::{CommitMode, DatacenterId, FLStoreConfig, LId, TagSet, WalSyncPolicy};

use crate::report::Report;

/// Closed-loop append workers: each keeps one single-record append in
/// flight, so batches coalesce and the quorum path sees real concurrency.
const WORKERS: usize = 16;

/// One swept configuration.
struct RunSpec {
    mode: CommitMode,
    replication: usize,
    policy: WalSyncPolicy,
    /// Crash the primary halfway through the measured window and let the
    /// failover monitor promote a backup while the workers keep going.
    crash: bool,
}

impl RunSpec {
    fn label(&self) -> String {
        format!(
            "{} rf={} sync={}{}",
            mode_name(self.mode),
            self.replication,
            policy_name(self.policy),
            if self.crash { " +failover" } else { "" }
        )
    }
}

fn mode_name(m: CommitMode) -> &'static str {
    match m {
        CommitMode::Serial => "serial",
        CommitMode::PipelinedQuorum => "pipelined",
    }
}

fn policy_name(p: WalSyncPolicy) -> &'static str {
    match p {
        WalSyncPolicy::PerBatch => "per-batch",
        WalSyncPolicy::PerRecord => "per-record",
        WalSyncPolicy::Never => "never",
    }
}

/// Measured outcome of one run.
struct RunResult {
    rate: f64,
    p50_us: f64,
    p99_us: f64,
    fsync_p50_us: f64,
    repl_p50_us: f64,
    lost: u64,
    dup: u64,
}

fn run_one(spec: &RunSpec, measure: Duration, warmup: Duration) -> (RunResult, MetricsSnapshot) {
    let dir = TestDir::new("chariots-commitpath");
    let cfg = FLStoreConfig::new()
        .maintainers(1)
        .batch_size(1_000)
        .replication(spec.replication)
        .commit_mode(spec.mode)
        .wal_sync_policy(spec.policy)
        .gossip_interval(Duration::from_millis(2))
        .heartbeat_interval(Duration::from_millis(2))
        .suspicion_timeout(Duration::from_millis(40));
    // Uncapped stations: the legs under study (fsync, replication round
    // trips) are real costs, and station pacing would only mask their
    // overlap.
    let store = FLStore::launch_with(
        DatacenterId(0),
        cfg,
        StationConfig::uncapped(),
        Some(dir.path().to_path_buf()),
    )
    .expect("launch");

    let shutdown = Shutdown::new();
    let acked = Counter::new();
    let latency = Histogram::new();
    let measuring = Counter::new(); // 0 = warmup, 1 = measuring
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let group = store.maintainers()[0].clone();
        let shutdown = shutdown.clone();
        let acked = acked.clone();
        let latency = latency.clone();
        let measuring = measuring.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("commitpath-client-{w}"))
                .spawn(move || {
                    // Every acked (LId, body) pair this worker observed —
                    // the integrity sweep reads them all back at the end.
                    let mut log: Vec<(LId, String)> = Vec::new();
                    let mut i = 0u64;
                    while !shutdown.is_signaled() {
                        let body = format!("w{w:02}.{i:010}");
                        i += 1;
                        let payload = AppendPayload::new(
                            TagSet::new(),
                            Bytes::from(body.clone().into_bytes()),
                        );
                        let t0 = Instant::now();
                        match group.append(vec![payload]) {
                            Ok(ids) => {
                                if measuring.get() > 0 {
                                    acked.add(1);
                                    latency.record_duration(t0.elapsed());
                                }
                                log.push((ids[0].1, body));
                            }
                            // A dead or mid-promotion primary rejects the
                            // attempt without assigning anything; the
                            // closed loop just tries the next record.
                            Err(_) => {}
                        }
                    }
                    log
                })
                .expect("spawn commitpath client"),
        );
    }

    // Optional mid-window crash: fired from its own thread so the workers
    // never pause around it.
    let crasher = spec.crash.then(|| {
        let group = store.maintainers()[0].clone();
        let delay = warmup + measure / 2;
        std::thread::Builder::new()
            .name("commitpath-crasher".into())
            .spawn(move || {
                std::thread::sleep(delay);
                group.crash();
            })
            .expect("spawn crasher")
    });

    std::thread::sleep(warmup);
    measuring.add(1);
    std::thread::sleep(measure);
    shutdown.signal();
    let mut acked_pairs: Vec<(LId, String)> = Vec::new();
    for w in workers {
        acked_pairs.extend(w.join().expect("join worker"));
    }
    if let Some(c) = crasher {
        let _ = c.join();
    }

    let (lost, dup) = integrity_sweep(&store, &acked_pairs);
    let snapshot = store.metrics();
    let p50_of = |key: &str| -> f64 {
        snapshot
            .histograms
            .get(key)
            .map(|h| h.p50 as f64)
            .unwrap_or(0.0)
    };
    let total = acked.get();
    let result = RunResult {
        rate: total as f64 / measure.as_secs_f64(),
        p50_us: latency.percentile(0.50) as f64,
        p99_us: latency.percentile(0.99) as f64,
        fsync_p50_us: p50_of("dc0.flstore.commit.fsync_us"),
        repl_p50_us: p50_of("dc0.flstore.commit.repl_wait_us"),
        lost,
        dup,
    };
    store.shutdown();
    (result, snapshot)
}

/// Reads every acked `(LId, body)` pair back through a client. Returns
/// `(lost, dup)`: acked records that never read back with their acked
/// body at their acked position, and positions acked for more than one
/// record.
fn integrity_sweep(store: &FLStore, acked: &[(LId, String)]) -> (u64, u64) {
    let mut dup = 0u64;
    let mut by_lid: HashMap<LId, &str> = HashMap::with_capacity(acked.len());
    for (lid, body) in acked {
        if by_lid.insert(*lid, body.as_str()).is_some() {
            dup += 1;
        }
    }

    let mut client = store.client();
    // Let the tail of the workload publish (the HL trails the last acks by
    // a gossip round, and a just-promoted backup may still be settling).
    if let Some(max_lid) = acked.iter().map(|&(lid, _)| lid).max() {
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.head_of_log().map(|hl| hl <= max_lid).unwrap_or(true) {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let mut lost = 0u64;
    for (lid, body) in acked {
        match client.read_with_hl(*lid, true) {
            Ok(entry) if &entry.record.body[..] == body.as_bytes() => {}
            _ => lost += 1,
        }
    }
    (lost, dup)
}

/// Runs the commit-path sweep. `quick` trims the matrix and windows to the
/// rows the smoke gate checks.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "commitpath",
        "Commit path: serial fsync-then-replicate vs pipelined quorum commit",
        vec![
            "appends/s".into(),
            "p50 (µs)".into(),
            "p99 (µs)".into(),
            "fsync p50 (µs)".into(),
            "repl p50 (µs)".into(),
            "lost".into(),
            "dup".into(),
        ],
    );
    let (measure, warmup) = if quick {
        (Duration::from_millis(400), Duration::from_millis(150))
    } else {
        (Duration::from_millis(1_200), Duration::from_millis(300))
    };

    // The head-to-head the gate checks: both modes at rf=2 with per-batch
    // syncs, clean and through a forced failover.
    let mut specs: Vec<RunSpec> = Vec::new();
    for mode in [CommitMode::Serial, CommitMode::PipelinedQuorum] {
        for crash in [false, true] {
            specs.push(RunSpec {
                mode,
                replication: 2,
                policy: WalSyncPolicy::PerBatch,
                crash,
            });
        }
    }
    if !quick {
        // Replication-factor sweep: rf=1 (no backups — the pipelined path
        // degenerates to serial, the rows should match) and rf=3 (the
        // quorum acks at 2 of 3, so the slowest backup leaves the
        // latency path entirely).
        for mode in [CommitMode::Serial, CommitMode::PipelinedQuorum] {
            for rf in [1usize, 3] {
                specs.push(RunSpec {
                    mode,
                    replication: rf,
                    policy: WalSyncPolicy::PerBatch,
                    crash: false,
                });
            }
        }
        // Sync-policy ablation at rf=2: per-record inflates the fsync leg,
        // which is exactly the leg the pipeline hides.
        for mode in [CommitMode::Serial, CommitMode::PipelinedQuorum] {
            specs.push(RunSpec {
                mode,
                replication: 2,
                policy: WalSyncPolicy::PerRecord,
                crash: false,
            });
        }
    }

    let mut merged = MetricsSnapshot::empty("commitpath");
    for spec in &specs {
        let (r, snapshot) = run_one(spec, measure, warmup);
        merged.merge(&snapshot);
        report.row(
            spec.label(),
            vec![
                r.rate,
                r.p50_us,
                r.p99_us,
                r.fsync_p50_us,
                r.repl_p50_us,
                r.lost as f64,
                r.dup as f64,
            ],
        );
    }

    report.note(format!(
        "{WORKERS} closed-loop clients, unique bodies, WAL-backed, uncapped \
         stations; fsync/repl p50 are the primary's commit-path legs \
         (dc0.flstore.commit.fsync_us / .repl_wait_us); lost/dup audit \
         every acked (LId, body) read back after the run — both must be 0 \
         on every row, including the +failover rows that crash the primary \
         mid-window"
    ));
    report.note(
        "serial acks after fsync + replication in sequence; pipelined ships \
         to backups first, overlaps its own fsync, and acks at f+1 durable \
         copies — p50 should fall from the sum of the legs toward their max"
            .to_string(),
    );
    report.attach_metrics(merged);
    report
}

/// Smoke gate for CI: at rf=2 with per-batch syncs, the pipelined commit
/// must not ack slower than the serial chain it replaces, and the
/// integrity ledger must be spotless on every row (nothing acked was
/// lost, no position was acked twice — crash rows included).
///
/// The latency bound is `≤` rather than a speedup factor: smoke windows
/// are short and CI machines noisy, and the gate exists to catch the
/// overlap breaking outright (pipelined regressing to slower-than-serial),
/// not to benchmark the runner.
pub fn verify_smoke(report: &Report) -> Result<(), String> {
    let row = |needle: &str| {
        report
            .rows
            .iter()
            .find(|r| r.label == needle)
            .ok_or_else(|| format!("missing {needle} row"))
    };
    for r in &report.rows {
        let lost = r.values.get(5).copied().unwrap_or(f64::NAN);
        let dup = r.values.get(6).copied().unwrap_or(f64::NAN);
        if lost != 0.0 {
            return Err(format!("{}: {lost} acked record(s) lost", r.label));
        }
        if dup != 0.0 {
            return Err(format!("{}: {dup} acked position(s) duplicated", r.label));
        }
    }
    let serial = row("serial rf=2 sync=per-batch")?;
    let pipelined = row("pipelined rf=2 sync=per-batch")?;
    let (s_rate, p_rate) = (serial.values[0], pipelined.values[0]);
    if s_rate <= 0.0 || p_rate <= 0.0 {
        return Err(format!(
            "a head-to-head run acked nothing (serial {s_rate:.0}/s, \
             pipelined {p_rate:.0}/s)"
        ));
    }
    let (s_p50, p_p50) = (serial.values[1], pipelined.values[1]);
    if p_p50 > s_p50 {
        return Err(format!(
            "pipelined p50 {p_p50:.0}µs exceeds serial p50 {s_p50:.0}µs at \
             rf=2 per-batch — the overlap is not paying for itself"
        ));
    }
    Ok(())
}
