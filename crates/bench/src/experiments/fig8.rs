//! Figure 8: "The append throughput of the shared log in a
//! single-datacenter deployment while increasing the number of Log
//! Maintainers."
//!
//! Three series, as in the paper: private cloud, public cloud with a
//! 125 K-per-maintainer target (below the plateau point), and public cloud
//! with 250 K (above it). FLStore's shared-nothing ownership should scale
//! near-linearly — the paper measures ≥99.3 % of perfect scaling at 10
//! maintainers.

use std::time::Duration;

use chariots_flstore::FLStore;
use chariots_simnet::{MetricsSnapshot, Shutdown, StationConfig};
use chariots_types::{DatacenterId, FLStoreConfig};

use crate::report::Report;
use crate::workload::{measure_rate, spawn_flstore_generator};
use crate::{private_station, public_station, SCALE};

struct Series {
    station: StationConfig,
    /// Per-maintainer target rate (bench scale).
    target_per_maintainer: f64,
}

/// Runs the Fig. 8 sweep.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "fig8",
        "Figure 8: FLStore append throughput vs number of maintainers",
        vec![
            "private (rec/s)".into(),
            "public@12.5k".into(),
            "public@25k".into(),
            "perfect private".into(),
        ],
    );
    let (warmup, window) = if quick {
        (Duration::from_millis(200), Duration::from_millis(500))
    } else {
        (Duration::from_millis(300), Duration::from_millis(1200))
    };
    let max_m = if quick { 4 } else { 10 };

    let series = [
        Series {
            station: private_station(),
            target_per_maintainer: 12_500.0,
        },
        Series {
            station: public_station(),
            target_per_maintainer: 12_500.0,
        },
        Series {
            station: public_station(),
            target_per_maintainer: 25_000.0,
        },
    ];

    let mut results: Vec<Vec<f64>> = vec![Vec::new(); series.len()];
    let mut metrics = MetricsSnapshot::empty("fig8");
    for (si, s) in series.iter().enumerate() {
        for m in 1..=max_m {
            let store = FLStore::launch_with(
                DatacenterId(0),
                FLStoreConfig::new()
                    .maintainers(m)
                    .batch_size(100)
                    .gossip_interval(Duration::from_millis(5)),
                s.station.clone(),
                None,
            )
            .expect("launch");
            let shutdown = Shutdown::new();
            // "An identical number of client machines were used": one
            // generator per maintainer, pinned to it.
            let mut gens = Vec::new();
            for maintainer in store.maintainers() {
                gens.push(spawn_flstore_generator(
                    maintainer.clone(),
                    s.target_per_maintainer,
                    shutdown.clone(),
                ));
            }
            let total = chariots_simnet::Counter::new();
            // Aggregate across maintainers by sampling all counters.
            let counters: Vec<_> = store
                .maintainers()
                .iter()
                .map(|h| h.appended_counter())
                .collect();
            let _ = &total;
            std::thread::sleep(warmup);
            let start: u64 = counters.iter().map(|c| c.get()).sum();
            let t0 = std::time::Instant::now();
            std::thread::sleep(window);
            let end: u64 = counters.iter().map(|c| c.get()).sum();
            let achieved = (end - start) as f64 / t0.elapsed().as_secs_f64();
            shutdown.signal();
            for (_, h) in gens {
                let _ = h.join();
            }
            metrics.merge(&store.metrics());
            store.shutdown();
            results[si].push(achieved);
            let _ = measure_rate; // (single-counter variant unused here)
        }
    }

    for m in 1..=max_m {
        let i = m - 1;
        report.row(
            format!("{m} maintainer(s)"),
            vec![
                results[0][i],
                results[1][i],
                results[2][i],
                results[0][0] * m as f64, // perfect scaling from 1-maintainer private
            ],
        );
    }
    let scaling = results[0][max_m - 1] / (results[0][0] * max_m as f64) * 100.0;
    report.note(format!(
        "private-cloud scaling efficiency at {max_m} maintainers: {scaling:.1}% \
         (paper: 99.3% at 10)"
    ));
    report.note(format!(
        "all rates are bench-scale; multiply by {SCALE} for paper-scale"
    ));
    report.attach_metrics(metrics);
    report
}
