//! Recovery sweep: flat-WAL full replay vs the segmented, checkpointed
//! storage engine.
//!
//! Every row builds the same log — dense single-maintainer appends with
//! ~64-byte bodies — tears the maintainer down, and measures the restart:
//! wall-clock time to serving and how many WAL bytes the replay actually
//! read. The flat row (one unbounded segment, no snapshot) replays the
//! whole log; the checkpointed rows restore the snapshot and stream only
//! the suffix written after it, so `replayed` should collapse to O(delta)
//! while `ckpt` absorbs the rest. The `+gc` row additionally runs a GC
//! sweep mid-log, which tiers the compaction behind a floor checkpoint and
//! rewrites dead segments — `reclaimed` must be non-zero, showing the disk
//! footprint is bounded rather than append-only.
//!
//! After every restart the bench replays its durability ledger: each acked
//! `(LId, body)` must read back verbatim, or — below an announced GC
//! floor — report `GarbageCollected`, never empty and never someone
//! else's bytes. The first post-recovery append must land exactly one past
//! the acked log; a lower position would re-issue an acked LId. Any
//! violation counts into `lost`.

use std::time::Instant;

use bytes::Bytes;
use chariots_flstore::{AppendPayload, EpochJournal, MaintainerCore, RangeMap};
use chariots_simnet::TestDir;
use chariots_types::{ChariotsError, DatacenterId, LId, MaintainerId, TagSet};

use crate::report::Report;

/// Appends per `append_batch` call (one WAL fsync each).
const BATCH: usize = 512;

/// Segment size for the segmented rows: small enough that a quick run
/// still rotates dozens of times.
const SEGMENT_BYTES: u64 = 256 * 1024;

struct RunSpec {
    label: &'static str,
    /// `None` = flat (one unbounded segment), `Some` = rotate at this size.
    segment_bytes: Option<u64>,
    /// Write a checkpoint after this fraction of the log.
    checkpoint_frac: Option<f64>,
    /// Run a GC sweep (floor checkpoint + compaction) at this fraction.
    gc_frac: Option<f64>,
}

struct RunResult {
    records: u64,
    log_bytes: u64,
    replayed_bytes: u64,
    ckpt_bytes: u64,
    recover_ms: f64,
    reclaimed_bytes: u64,
    lost: u64,
}

fn body(i: u64) -> String {
    // ~64 bytes: a unique prefix plus filler, so a misdirected read can
    // never pass the ledger check by accident.
    format!("rec-{i:012}-{:x>48}", "")
}

fn run_one(spec: &RunSpec, records: u64) -> RunResult {
    let dir = TestDir::new("chariots-recovery");
    let path = dir.path().join("m0.wal");
    let journal = EpochJournal::new(RangeMap::new(1, 4096));

    let checkpoint_at = spec
        .checkpoint_frac
        .map(|f| (records as f64 * f) as u64)
        .unwrap_or(u64::MAX);
    let gc_at = spec
        .gc_frac
        .map(|f| (records as f64 * f) as u64)
        .unwrap_or(u64::MAX);

    let mut core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone())
        .with_wal_segment_bytes(spec.segment_bytes.unwrap_or(u64::MAX));
    core = core.with_wal(&path).expect("open wal");

    let mut acked: Vec<(LId, String)> = Vec::with_capacity(records as usize);
    let mut reclaimed_bytes = 0u64;
    let mut gc_floor = LId::ZERO;
    let mut appended = 0u64;
    while appended < records {
        let n = BATCH.min((records - appended) as usize);
        let payloads: Vec<AppendPayload> = (0..n)
            .map(|k| {
                AppendPayload::new(
                    TagSet::new(),
                    Bytes::from(body(appended + k as u64).into_bytes()),
                )
            })
            .collect();
        let out = core.append_batch(payloads).expect("append");
        for e in &out {
            acked.push((e.lid, String::from_utf8(e.record.body.to_vec()).unwrap()));
        }
        core.sync_batch().expect("sync");
        appended += n as u64;

        if appended >= gc_at && gc_floor == LId::ZERO && gc_at != u64::MAX {
            gc_floor = LId(gc_at);
            if let Some(stats) = core.gc_before(gc_floor) {
                reclaimed_bytes += stats.reclaimed_bytes;
            }
        }
        if appended >= checkpoint_at && appended - (n as u64) < checkpoint_at {
            let info = core
                .checkpoint()
                .expect("checkpoint")
                .expect("wal-backed core snapshots");
            reclaimed_bytes += info.reclaimed_bytes;
        }
    }
    core.sync().expect("final sync");
    let log_bytes = core.storage_stats().disk_bytes;
    drop(core);

    // The measured restart: time until the maintainer can serve reads.
    let t0 = Instant::now();
    let mut core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal)
        .with_wal_segment_bytes(spec.segment_bytes.unwrap_or(u64::MAX))
        .with_wal(&path)
        .expect("recover");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rs = core.recovery_stats();

    // Durability ledger: every acked record reads back verbatim, or sits
    // below the announced GC floor and says so.
    let mut lost = 0u64;
    for (lid, expect) in &acked {
        match core.read(*lid, false) {
            Ok(e) if &e.record.body[..] == expect.as_bytes() => {}
            Err(ChariotsError::GarbageCollected(_)) if *lid < gc_floor => {}
            _ => lost += 1,
        }
    }
    // Assignment must resume after the acked log, never inside it.
    let next = core.append_batch(vec![AppendPayload::new(
        TagSet::new(),
        Bytes::from_static(b"resume"),
    )]);
    match next {
        Ok(out) if out[0].lid == LId(records) => {}
        _ => lost += 1,
    }

    RunResult {
        records,
        log_bytes,
        replayed_bytes: rs.replayed_bytes,
        ckpt_bytes: rs.checkpoint_bytes,
        recover_ms,
        reclaimed_bytes,
        lost,
    }
}

/// Runs the recovery sweep. `quick` shrinks the log for the smoke gate;
/// the full run restarts over a 120k-record log.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "recovery",
        "Restart: flat-WAL full replay vs segmented WAL with checkpoints",
        vec![
            "records".into(),
            "log (B)".into(),
            "replayed (B)".into(),
            "ckpt (B)".into(),
            "recover (ms)".into(),
            "reclaimed (B)".into(),
            "lost".into(),
        ],
    );
    let records: u64 = if quick { 20_000 } else { 120_000 };

    let specs = [
        RunSpec {
            label: "flat replay",
            segment_bytes: None,
            checkpoint_frac: None,
            gc_frac: None,
        },
        RunSpec {
            label: "segmented + checkpoint",
            segment_bytes: Some(SEGMENT_BYTES),
            checkpoint_frac: Some(0.95),
            gc_frac: None,
        },
        RunSpec {
            label: "segmented + checkpoint + gc",
            segment_bytes: Some(SEGMENT_BYTES),
            checkpoint_frac: Some(0.95),
            gc_frac: Some(0.5),
        },
    ];

    for spec in &specs {
        let r = run_one(spec, records);
        report.row(
            spec.label.to_string(),
            vec![
                r.records as f64,
                r.log_bytes as f64,
                r.replayed_bytes as f64,
                r.ckpt_bytes as f64,
                r.recover_ms,
                r.reclaimed_bytes as f64,
                r.lost as f64,
            ],
        );
    }

    report.note(format!(
        "dense single-maintainer log, ~64 B bodies, {BATCH}-record group \
         commits; checkpoint taken at 95% of the log, GC floor announced \
         at 50%; `replayed` is the WAL bytes the restart actually read, \
         `ckpt` the snapshot it restored instead"
    ));
    report.note(
        "`lost` audits every acked (LId, body) after the restart — records \
         must read back verbatim (or report GarbageCollected below the \
         floor), and the first post-recovery append must land exactly one \
         past the acked log; any other outcome counts here and must be 0"
            .to_string(),
    );
    report
}

/// Smoke gate for CI: checkpointed recovery must replay less than 10% of
/// the bytes the flat restart replays, the GC row must actually reclaim
/// disk (the footprint is bounded), and no row may lose an acked record.
pub fn verify_smoke(report: &Report) -> Result<(), String> {
    let row = |needle: &str| {
        report
            .rows
            .iter()
            .find(|r| r.label == needle)
            .ok_or_else(|| format!("missing {needle} row"))
    };
    for r in &report.rows {
        let lost = r.values.get(6).copied().unwrap_or(f64::NAN);
        if lost != 0.0 {
            return Err(format!("{}: {lost} acked record(s) lost", r.label));
        }
    }
    let flat = row("flat replay")?;
    let ckpt = row("segmented + checkpoint")?;
    let gc = row("segmented + checkpoint + gc")?;
    let (flat_replayed, ckpt_replayed) = (flat.values[2], ckpt.values[2]);
    if flat_replayed <= 0.0 {
        return Err("flat restart replayed nothing — the log never hit disk".into());
    }
    if ckpt_replayed >= flat_replayed * 0.10 {
        return Err(format!(
            "checkpointed restart replayed {ckpt_replayed:.0} B, not under \
             10% of the flat {flat_replayed:.0} B — recovery is not O(delta)"
        ));
    }
    if gc.values[5] <= 0.0 {
        return Err("gc row reclaimed no disk — the WAL footprint is unbounded".into());
    }
    Ok(())
}
