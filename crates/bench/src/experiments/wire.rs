//! Wire head-to-head: the identical Table-4-shaped workload on both
//! transport backends — the in-process simnet substrate vs real TCP
//! sockets on loopback.
//!
//! Both rows launch the same deployment (2 batchers, 1 filter, 1 queue,
//! 1 maintainer — Table 4's shape) with **uncapped** service stations, so
//! neither row is paced by the queueing model: the simnet row measures the
//! channel substrate, the TCP row measures real sockets with
//! length-prefixed CRC'd frames, one serialization per message, vectored
//! writes, and per-peer connection reuse. The only config difference
//! between the rows is [`TransportMode`] — the protocol code is
//! byte-identical.
//!
//! Closed-loop clients issue blocking appends with unique bodies and keep
//! every acked `(LId, body)` pair; before teardown the experiment reads
//! them all back — the `lost` and `dup` columns are the integrity ledger
//! and must be zero on both rows. `wire B/rec` divides the bytes the
//! transport actually wrote to sockets (headers included, every intra-DC
//! hop: client→batcher, batcher→filter, filter→queue, queue→maintainer,
//! and the FLStore RPCs) by the acked record count; it must be zero on the
//! simnet row and nonzero on the TCP row.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use chariots_core::{ChariotsCluster, StageStations};
use chariots_simnet::{Counter, Histogram, LinkConfig, MetricsSnapshot, Shutdown, StationConfig};
use chariots_types::{
    ChariotsConfig, DatacenterId, FLStoreConfig, LId, StageCounts, TagSet, TransportMode,
};

use crate::report::Report;
use crate::RECORD_BYTES;

/// Closed-loop append sessions: each keeps one blocking append in flight
/// (round-robined over the two batchers by the client library), so the
/// pipeline sees real concurrency and batches coalesce.
const WORKERS: usize = 16;

/// Measured outcome of one backend.
struct RunResult {
    rate: f64,
    p50_us: f64,
    p99_us: f64,
    wire_bytes_per_rec: f64,
    lost: u64,
    dup: u64,
}

fn backend_name(mode: TransportMode) -> &'static str {
    match mode {
        TransportMode::Simnet => "simnet",
        TransportMode::Tcp => "tcp",
    }
}

/// The Table-4 deployment on uncapped stations, differing between calls
/// only in the transport substrate.
fn table4_cfg(mode: TransportMode) -> ChariotsConfig {
    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.stages = StageCounts {
        receivers: 1,
        batchers: 2,
        filters: 1,
        queues: 1,
        senders: 1,
    };
    cfg.flstore = FLStoreConfig::new()
        .maintainers(1)
        .batch_size(100)
        .gossip_interval(Duration::from_millis(2));
    cfg.batcher_flush_threshold = 64;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg.transport(mode)
}

/// A unique 512-byte body ("the size of each record is 512 Bytes").
fn body_for(mode: TransportMode, worker: usize, i: u64) -> String {
    let mut body = format!("wire.{}.w{worker:02}.{i:010}.", backend_name(mode));
    while body.len() < RECORD_BYTES {
        body.push('_');
    }
    body
}

fn run_backend(
    mode: TransportMode,
    measure: Duration,
    warmup: Duration,
) -> (RunResult, MetricsSnapshot) {
    let stations = StageStations {
        batcher: StationConfig::uncapped(),
        filter: StationConfig::uncapped(),
        queue: StationConfig::uncapped(),
        store: StationConfig::uncapped(),
        sender: StationConfig::uncapped(),
        receiver: StationConfig::uncapped(),
    };
    let cluster = ChariotsCluster::launch(table4_cfg(mode), stations, LinkConfig::default())
        .expect("launch pipeline");

    let shutdown = Shutdown::new();
    let acked = Counter::new();
    let latency = Histogram::new();
    let measuring = Counter::new(); // 0 = warmup, 1 = measuring
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let mut client = cluster.client(DatacenterId(0));
        let shutdown = shutdown.clone();
        let acked = acked.clone();
        let latency = latency.clone();
        let measuring = measuring.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("wire-client-{w}"))
                .spawn(move || {
                    // Every acked (LId, body) pair this worker observed —
                    // the integrity sweep reads them all back at the end.
                    let mut log: Vec<(LId, String)> = Vec::new();
                    let mut i = 0u64;
                    while !shutdown.is_signaled() {
                        let body = body_for(mode, w, i);
                        i += 1;
                        let t0 = Instant::now();
                        match client.append(TagSet::new(), body.clone()) {
                            Ok((_toid, lid)) => {
                                if measuring.get() > 0 {
                                    acked.add(1);
                                    latency.record_duration(t0.elapsed());
                                }
                                log.push((lid, body));
                            }
                            // A transient transport error (reconnect in
                            // flight) rejects the attempt without acking
                            // anything; the closed loop just tries the
                            // next record.
                            Err(_) => {}
                        }
                    }
                    log
                })
                .expect("spawn wire client"),
        );
    }

    std::thread::sleep(warmup);
    measuring.add(1);
    std::thread::sleep(measure);
    shutdown.signal();
    let mut acked_pairs: Vec<(LId, String)> = Vec::new();
    for w in workers {
        acked_pairs.extend(w.join().expect("join wire client"));
    }

    // Snapshot the transport counters *before* the integrity sweep so the
    // bytes/record column reflects the append workload, not the read-back.
    let snapshot = cluster.metrics();
    let wire_bytes: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.contains(".chariots.transport.") && name.ends_with(".bytes_out"))
        .map(|(_, v)| *v)
        .sum();

    let (lost, dup) = integrity_sweep(&cluster, &acked_pairs);

    let total = acked.get();
    let result = RunResult {
        rate: total as f64 / measure.as_secs_f64(),
        p50_us: latency.percentile(0.50) as f64,
        p99_us: latency.percentile(0.99) as f64,
        wire_bytes_per_rec: if acked_pairs.is_empty() {
            0.0
        } else {
            wire_bytes as f64 / acked_pairs.len() as f64
        },
        lost,
        dup,
    };
    cluster.shutdown();
    (result, snapshot)
}

/// Reads every acked `(LId, body)` pair back through a fresh client.
/// Returns `(lost, dup)`: acked records that never read back with their
/// acked body at their acked position, and positions acked for more than
/// one record.
fn integrity_sweep(cluster: &ChariotsCluster, acked: &[(LId, String)]) -> (u64, u64) {
    let mut dup = 0u64;
    let mut by_lid: HashMap<LId, &str> = HashMap::with_capacity(acked.len());
    for (lid, body) in acked {
        if by_lid.insert(*lid, body.as_str()).is_some() {
            dup += 1;
        }
    }

    let mut client = cluster.client(DatacenterId(0));
    // Let the tail of the workload publish (the HL trails the last acks by
    // a gossip round).
    if let Some(max_lid) = acked.iter().map(|&(lid, _)| lid).max() {
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.head_of_log().map(|hl| hl <= max_lid).unwrap_or(true) {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let mut lost = 0u64;
    for chunk in acked.chunks(512) {
        let lids: Vec<LId> = chunk.iter().map(|&(lid, _)| lid).collect();
        for (result, (_, body)) in client.read_many(&lids).iter().zip(chunk) {
            match result {
                Ok(entry) if &entry.record.body[..] == body.as_bytes() => {}
                _ => lost += 1,
            }
        }
    }
    (lost, dup)
}

/// Runs the wire head-to-head. `quick` trims the windows to what the smoke
/// gate needs.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "wire",
        "Wire: Table-4 workload on simnet channels vs real TCP loopback",
        vec![
            "appends/s".into(),
            "p50 (µs)".into(),
            "p99 (µs)".into(),
            "wire B/rec".into(),
            "lost".into(),
            "dup".into(),
        ],
    );
    // The head-to-head always runs both backends, whatever --transport the
    // rest of the harness was launched with.
    report.transport = "simnet+tcp".to_string();
    let (measure, warmup) = if quick {
        (Duration::from_millis(400), Duration::from_millis(150))
    } else {
        (Duration::from_millis(1_500), Duration::from_millis(300))
    };

    let mut merged = MetricsSnapshot::empty("wire");
    for mode in [TransportMode::Simnet, TransportMode::Tcp] {
        let (r, snapshot) = run_backend(mode, measure, warmup);
        merged.merge(&snapshot);
        report.row(
            backend_name(mode),
            vec![
                r.rate,
                r.p50_us,
                r.p99_us,
                r.wire_bytes_per_rec,
                r.lost as f64,
                r.dup as f64,
            ],
        );
    }

    report.note(format!(
        "{WORKERS} closed-loop clients, unique 512 B bodies, Table-4 shape \
         (2 batchers, 1 filter, 1 queue, 1 maintainer), uncapped stations; \
         the only config delta between rows is the transport substrate"
    ));
    report.note(
        "wire B/rec sums chariots.transport.*.bytes_out over every intra-DC \
         hop (frame headers included) per acked record — 0 on simnet, \
         nonzero on tcp; lost/dup audit every acked (LId, body) read back \
         after the run and must be 0 on both rows"
            .to_string(),
    );
    report.attach_metrics(merged);
    report
}

/// Smoke gate for CI: both backends must ack something, the integrity
/// ledger must be spotless on both rows (nothing acked was lost, no
/// position acked twice), and the byte accounting must place the traffic
/// where the backend says it is — zero socket bytes on simnet, nonzero on
/// TCP.
pub fn verify_smoke(report: &Report) -> Result<(), String> {
    let row = |needle: &str| {
        report
            .rows
            .iter()
            .find(|r| r.label == needle)
            .ok_or_else(|| format!("missing {needle} row"))
    };
    for r in &report.rows {
        let lost = r.values.get(4).copied().unwrap_or(f64::NAN);
        let dup = r.values.get(5).copied().unwrap_or(f64::NAN);
        if lost != 0.0 {
            return Err(format!("{}: {lost} acked record(s) lost", r.label));
        }
        if dup != 0.0 {
            return Err(format!("{}: {dup} acked position(s) duplicated", r.label));
        }
    }
    let simnet = row("simnet")?;
    let tcp = row("tcp")?;
    if simnet.values[0] <= 0.0 || tcp.values[0] <= 0.0 {
        return Err(format!(
            "a backend acked nothing (simnet {:.0}/s, tcp {:.0}/s)",
            simnet.values[0], tcp.values[0]
        ));
    }
    if simnet.values[3] != 0.0 {
        return Err(format!(
            "simnet row reports {:.0} socket bytes/record — the oracle \
             backend must not touch the wire",
            simnet.values[3]
        ));
    }
    if tcp.values[3] <= 0.0 {
        return Err(
            "tcp row reports zero socket bytes/record — the workload never \
             crossed the wire"
                .to_string(),
        );
    }
    Ok(())
}
