//! Availability under failure: kill a maintainer primary mid-run and
//! measure append availability and latency before, during, and after the
//! failover.
//!
//! With replication factor 2 the crash window should cost latency (the
//! suspicion timeout plus client backoff), **not** availability: the
//! failure detector suspects the dead primary, the monitor promotes its
//! backup, and every client session re-routes through the shared group
//! state. The experiment's signature shape is a p99 spike in the "during"
//! row with availability staying at (or near) 100 %.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chariots_flstore::FLStore;
use chariots_simnet::{Counter, Histogram, Shutdown};
use chariots_types::{DatacenterId, FLStoreConfig, TagSet};

use crate::private_station;
use crate::report::Report;

/// Phases of the run; phase 0 is an unmeasured warmup.
const PHASES: [&str; 4] = ["warmup", "before", "during failover", "after recovery"];

/// Closed-loop append workers used to probe availability.
const WORKERS: usize = 4;

/// Runs the availability-under-failure experiment. `quick` trims the
/// phase windows.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "availability",
        "Availability under failure: primary crash with replication factor 2",
        vec![
            "availability (%)".into(),
            "appends/s".into(),
            "p99 latency (ms)".into(),
        ],
    );
    let (phase_len, crash_len) = if quick {
        (Duration::from_millis(300), Duration::from_millis(300))
    } else {
        (Duration::from_millis(800), Duration::from_millis(600))
    };

    let cfg = FLStoreConfig::new()
        .maintainers(3)
        .batch_size(100)
        .gossip_interval(Duration::from_millis(1))
        .replication(2)
        .heartbeat_interval(Duration::from_millis(2))
        .suspicion_timeout(Duration::from_millis(40));
    let store =
        FLStore::launch_with(DatacenterId(0), cfg, private_station(), None).expect("launch");

    let phase = Arc::new(AtomicUsize::new(0));
    let shutdown = Shutdown::new();
    let attempts: Vec<Counter> = (0..PHASES.len()).map(|_| Counter::new()).collect();
    let successes: Vec<Counter> = (0..PHASES.len()).map(|_| Counter::new()).collect();
    let latencies: Vec<Histogram> = (0..PHASES.len()).map(|_| Histogram::new()).collect();

    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let mut client = store.client();
        let phase = Arc::clone(&phase);
        let shutdown = shutdown.clone();
        let attempts = attempts.clone();
        let successes = successes.clone();
        let latencies = latencies.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("avail-client-{w}"))
                .spawn(move || {
                    while !shutdown.is_signaled() {
                        let p = phase.load(Ordering::Acquire);
                        let t0 = Instant::now();
                        let ok = client
                            .append(TagSet::new(), crate::workload::payload().body)
                            .is_ok();
                        attempts[p].add(1);
                        if ok {
                            successes[p].add(1);
                        }
                        latencies[p].record_duration(t0.elapsed());
                        // Probe pacing: availability, not peak throughput,
                        // is the measurement.
                        std::thread::sleep(Duration::from_micros(500));
                    }
                })
                .expect("spawn availability client"),
        );
    }

    // Warmup → steady state → crash the primary of group 0 → recover it.
    let group = store.maintainers()[0].clone();
    let mut durations = [phase_len; 4];
    durations[0] = phase_len / 2;
    durations[2] = crash_len;
    std::thread::sleep(durations[0]);
    phase.store(1, Ordering::Release);
    std::thread::sleep(durations[1]);
    phase.store(2, Ordering::Release);
    group.crash();
    std::thread::sleep(durations[2]);
    phase.store(3, Ordering::Release);
    group.recover();
    std::thread::sleep(durations[3]);
    shutdown.signal();
    for w in workers {
        let _ = w.join();
    }

    for p in 1..PHASES.len() {
        let attempted = attempts[p].get();
        let succeeded = successes[p].get();
        let availability = if attempted == 0 {
            0.0
        } else {
            100.0 * succeeded as f64 / attempted as f64
        };
        let rate = succeeded as f64 / durations[p].as_secs_f64();
        let p99_ms = latencies[p].percentile(0.99) as f64 / 1_000.0;
        report.row(PHASES[p], vec![availability, rate, p99_ms]);
    }

    let snapshot = store.metrics();
    let failovers = snapshot
        .counters
        .get("dc0.flstore.failover.count")
        .copied()
        .unwrap_or(0);
    report.note(format!(
        "failovers observed: {failovers} (dc0.flstore.failover.count); \
         expect availability ≈100% in every phase — the crash shows up as a \
         p99 spike during failover, not as failed appends"
    ));
    report.attach_metrics(snapshot);
    store.shutdown();
    report
}
