//! Transaction commit latency vs WAN round-trip time: Message Futures and
//! Helios over the causal log (§4.3).
//!
//! The commit protocols' communication *is* the log's propagation, so
//! commit latency should track the WAN RTT linearly — the observation
//! behind Helios's lower-bound analysis. This experiment measures the
//! commit latency of non-conflicting transactions at increasing one-way
//! WAN latencies, for both validation policies.

use std::time::{Duration, Instant};

use chariots_core::{ChariotsCluster, StageStations};
use chariots_msgfutures::{CommitPolicy, Transaction, TxnManager};
use chariots_simnet::LinkConfig;
use chariots_types::{ChariotsConfig, DatacenterId, FLStoreConfig};

use crate::report::Report;

fn launch(wan_ms: u64) -> ChariotsCluster {
    let mut cfg = ChariotsConfig::new().datacenters(2);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(16)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 1;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg.propagation_interval = Duration::from_millis(1);
    ChariotsCluster::launch(
        cfg,
        StageStations::default(),
        LinkConfig::with_latency(Duration::from_millis(wan_ms)),
    )
    .expect("launch")
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Runs the commit-latency sweep.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "txn_latency",
        "Transactions: commit latency vs WAN latency (Message Futures & Helios)",
        vec![
            "MF mean (ms)".into(),
            "MF p95 (ms)".into(),
            "Helios mean (ms)".into(),
            "Helios p95 (ms)".into(),
        ],
    );
    let txns = if quick { 10 } else { 25 };
    let latencies: &[u64] = if quick {
        &[5, 20, 40]
    } else {
        &[5, 10, 20, 40, 80]
    };

    for &wan_ms in latencies {
        let mut row = Vec::new();
        for policy in [CommitPolicy::MessageFutures, CommitPolicy::Helios] {
            let cluster = launch(wan_ms);
            let mut tm = TxnManager::new(cluster.dc(DatacenterId(0)), policy);
            // One warmup commit to prime the propagation loops.
            let mut warm = Transaction::new("warmup");
            warm.write("warm", "1");
            tm.commit(warm, Duration::from_secs(20)).expect("warmup");
            let mut samples = Vec::with_capacity(txns);
            for i in 0..txns {
                let mut t = Transaction::new(format!("t{i}"));
                t.write(format!("key{i}"), "v");
                let t0 = Instant::now();
                tm.commit(t, Duration::from_secs(20)).expect("commit");
                samples.push(t0.elapsed().as_secs_f64() * 1000.0);
            }
            cluster.shutdown();
            samples.sort_by(|a, b| a.total_cmp(b));
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            row.push(mean);
            row.push(percentile(&samples, 0.95));
        }
        report.row(format!("WAN {wan_ms:>3} ms one-way"), row);
    }
    report.note(
        "commit latency tracks the WAN round trip (the log IS the commit \
         protocol's communication): expect ≈2×one-way + pipeline overhead, \
         growing linearly with the link latency",
    );
    report.note(
        "the two policies differ in validation scope, not in the history \
         exchange they await, so their latencies coincide here; the full \
         Helios protocol shaves the final leg via its RTT lower-bound \
         calculation (see chariots-msgfutures docs)",
    );
    report
}
