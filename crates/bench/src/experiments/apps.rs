//! Application-level throughput: the §4 case studies exercised end to end
//! — Hyksos puts/gets, the Materializer's log-replay rate, and stream
//! reader fan-out.
//!
//! These are extensions (the paper's evaluation stops at the log layer);
//! they demonstrate the paper's claim that "complex solutions" built on the
//! append/read interface inherit its scalability.

use std::time::{Duration, Instant};

use chariots_core::{ChariotsCluster, StageStations};
use chariots_hyksos::{HyksosClient, Materializer};
use chariots_simnet::LinkConfig;
use chariots_streamproc::{Publisher, Reader};
use chariots_types::{ChariotsConfig, DatacenterId, FLStoreConfig};

use crate::report::Report;

fn launch() -> ChariotsCluster {
    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(64)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 16;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    ChariotsCluster::launch(cfg, StageStations::default(), LinkConfig::default()).expect("launch")
}

/// Runs the application-level measurements.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "apps",
        "Applications: Hyksos and stream processing over the log (extensions)",
        vec!["ops/s".into()],
    );
    let n: u64 = if quick { 500 } else { 2_000 };

    // Hyksos put throughput (synchronous round trips).
    {
        let cluster = launch();
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        let t0 = Instant::now();
        for i in 0..n {
            kv.put(format!("key{}", i % 64), i.to_string())
                .expect("put");
        }
        let rate = n as f64 / t0.elapsed().as_secs_f64();
        report.row(format!("hyksos put (sync, {n} ops)"), vec![rate]);

        // Wait for readability, then measure indexed gets.
        let deadline = Instant::now() + Duration::from_secs(10);
        while kv.snapshot_position().expect("hl").0 < n {
            assert!(Instant::now() < deadline, "HL stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(50)); // indexer ingestion
        let gets = if quick { 200 } else { 500 };
        let t0 = Instant::now();
        for i in 0..gets {
            kv.get(&format!("key{}", i % 64)).expect("get");
        }
        let rate = gets as f64 / t0.elapsed().as_secs_f64();
        report.row(format!("hyksos get (indexed, {gets} ops)"), vec![rate]);

        // Materializer: fold the whole log into a view.
        let mut view = Materializer::new(cluster.client(DatacenterId(0)));
        let t0 = Instant::now();
        view.catch_up().expect("catch up");
        let rate = n as f64 / t0.elapsed().as_secs_f64();
        report.row(format!("materializer replay ({n} records)"), vec![rate]);
        cluster.shutdown();
    }

    // Stream: publisher + partitioned reader group drain rate.
    {
        let cluster = launch();
        let mut publisher = Publisher::new(cluster.client(DatacenterId(0)));
        for i in 0..n {
            publisher
                .publish("events", format!("e{i}"))
                .expect("publish");
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut probe = cluster.client(DatacenterId(0));
        while probe.head_of_log().expect("hl").0 < n {
            assert!(Instant::now() < deadline, "HL stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut readers: Vec<Reader> = (0..4)
            .map(|i| {
                Reader::new(cluster.client(DatacenterId(0)), format!("g{i}"), "events")
                    .partitioned(4, i)
            })
            .collect();
        let t0 = Instant::now();
        let mut consumed = 0u64;
        while consumed < n {
            for r in &mut readers {
                consumed += r.poll(256).expect("poll").len() as u64;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "readers stalled at {consumed}"
            );
        }
        let rate = n as f64 / t0.elapsed().as_secs_f64();
        report.row(
            format!("stream drain, 4 partitioned readers ({n} events)"),
            vec![rate],
        );
        cluster.shutdown();
    }

    report.note(
        "uncapped machines: these rates measure the software path (log \
         round trips, index lookups, replay folds), not the simulated \
         capacity model",
    );
    report
}
