//! Figure 9: throughput time-series of the Table-4 deployment.
//!
//! Paper shape: the clients generate a *fixed number* of records; the
//! batchers finish early (they run ahead of the saturated filter), the
//! queue keeps draining afterwards, and the queue's observed throughput
//! *rises* near the end once the upstream stops competing for capacity.
//!
//! The series come from the telemetry [`Collector`]: it scrapes the
//! cluster's registries (plus an ad-hoc `clients` registry for the load
//! generators) every 500 ms, and the experiment reads per-tick counter
//! deltas back out of the unified [`Timeline`] — the spawned replacement
//! for the old inline `sample_until` loop.

use std::time::{Duration, Instant};

use bytes::Bytes;
use chariots_core::{ChariotsCluster, Incoming, LocalAppend, StageStations};
use chariots_simnet::{
    Collector, CollectorConfig, LinkConfig, MetricsRegistry, RateLimiter, Shutdown,
};
use chariots_types::{
    ChariotsConfig, DatacenterId, FLStoreConfig, StageCounts, TagSet, VersionVector,
};

use crate::report::Report;
use crate::workload::GEN_BATCH;
use crate::{stage_station, MACHINE_RATE, RECORD_BYTES};

/// Runs the Fig. 9 time-series experiment.
pub fn run(quick: bool) -> Report {
    let total_records: u64 = if quick { 40_000 } else { 120_000 };
    let per_client = total_records / 2;
    let sample_interval = Duration::from_millis(500);

    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.stages = StageCounts {
        receivers: 1,
        batchers: 2,
        filters: 1,
        queues: 1,
        senders: 1,
    };
    cfg.flstore = FLStoreConfig::new()
        .maintainers(1)
        .batch_size(100)
        .gossip_interval(Duration::from_millis(5));
    cfg.batcher_flush_threshold = GEN_BATCH;
    cfg.batcher_flush_interval = Duration::from_millis(2);
    // `--transport tcp` moves every intra-DC hop (and the FLStore RPCs)
    // onto real loopback sockets; the default stays on the simnet oracle.
    let cfg = cfg.transport(crate::transport());
    let stations = StageStations {
        batcher: stage_station(),
        filter: stage_station(),
        queue: stage_station(),
        store: stage_station(),
        sender: stage_station(),
        receiver: stage_station(),
    };
    let cluster = ChariotsCluster::launch(cfg, stations, LinkConfig::default()).expect("launch");
    let dc = cluster.dc(DatacenterId(0));
    let batchers = dc.batcher_handles();

    // The load generators report into their own registry, scraped
    // alongside the cluster's.
    let clients_registry = MetricsRegistry::new("clients");
    let client_counter = clients_registry.counter("clients.generated");

    // Two clients, each pushing a fixed record count at machine rate.
    let shutdown = Shutdown::new();
    let mut client_threads = Vec::new();
    for c in 0..2usize {
        let batcher = batchers[c % batchers.len()].clone();
        let counter = client_counter.clone();
        let stop = shutdown.clone();
        client_threads.push(std::thread::spawn(move || {
            let mut limiter = RateLimiter::new(MACHINE_RATE * 0.99);
            let mut sent = 0u64;
            while sent < per_client && !stop.is_signaled() {
                limiter.pace(GEN_BATCH as u64);
                for _ in 0..GEN_BATCH {
                    let _ = batcher.send(Incoming::Local(LocalAppend {
                        tags: TagSet::new(),
                        body: Bytes::from(vec![0xCD; RECORD_BYTES]),
                        deps: VersionVector::new(1),
                        reply: None,
                        trace: None,
                    }));
                }
                sent += GEN_BATCH as u64;
                counter.add(GEN_BATCH as u64);
            }
        }));
    }

    // One collector over every registry; the series Fig. 9 plots are read
    // back out of its timeline after the run.
    let mut registries = cluster.registries();
    registries.push(clients_registry);
    let collector = Collector::spawn(registries, CollectorConfig::with_interval(sample_interval));

    // Wait for the store to absorb the whole workload (bounded).
    let store_counter = dc
        .stage_counters()
        .into_iter()
        .find(|(n, _)| n.starts_with("store-0"))
        .map(|(_, c)| c)
        .expect("stage counter");
    let cap = if quick { 30u32 } else { 60 }; // max sample windows (safety)
    let deadline = Instant::now() + sample_interval * cap;
    while store_counter.get() < total_records && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }

    shutdown.signal();
    for t in client_threads {
        let _ = t.join();
    }
    let metrics = cluster.metrics();
    let timeline = collector.stop();
    cluster.shutdown();

    let keys = [
        "clients.generated",
        "dc0.batcher0.in",
        "dc0.queue0.in",
        "dc0.store0.in",
    ];
    let interval = Duration::from_micros(timeline.interval_us);
    let mut report = Report::new(
        "fig9",
        "Figure 9: pipeline throughput over time (table-4 deployment, fixed workload)",
        keys.iter().map(|k| format!("{k} rec/s")).collect(),
    );
    let rates: Vec<Vec<f64>> = keys
        .iter()
        .map(|k| timeline.counter_series(k).rates(interval))
        .collect();
    let n_ticks = rates.first().map(|r| r.len()).unwrap_or(0);
    for tick in 0..n_ticks {
        report.row(
            format!("t={:.1}s", (tick + 1) as f64 * interval.as_secs_f64()),
            rates.iter().map(|r| r[tick]).collect(),
        );
    }
    report.note(
        "expect: clients and batchers finish first; the queue/store continue \
         draining the backlog afterwards (the paper's batchers finished at \
         42:30 while latter stages ran to 43:10)",
    );
    report.attach_metrics(metrics);
    report
}
