//! Figure 9: throughput time-series of the Table-4 deployment.
//!
//! Paper shape: the clients generate a *fixed number* of records; the
//! batchers finish early (they run ahead of the saturated filter), the
//! queue keeps draining afterwards, and the queue's observed throughput
//! *rises* near the end once the upstream stops competing for capacity.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use chariots_core::{ChariotsCluster, Incoming, LocalAppend, StageStations};
use chariots_simnet::{sample_until, LinkConfig, RateLimiter, Shutdown};
use chariots_types::{
    ChariotsConfig, DatacenterId, FLStoreConfig, StageCounts, TagSet, VersionVector,
};

use crate::report::Report;
use crate::workload::GEN_BATCH;
use crate::{stage_station, MACHINE_RATE, RECORD_BYTES};

/// Runs the Fig. 9 time-series experiment.
pub fn run(quick: bool) -> Report {
    let total_records: u64 = if quick { 40_000 } else { 120_000 };
    let per_client = total_records / 2;
    let sample_interval = Duration::from_millis(500);

    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.stages = StageCounts {
        receivers: 1,
        batchers: 2,
        filters: 1,
        queues: 1,
        senders: 1,
    };
    cfg.flstore = FLStoreConfig::new()
        .maintainers(1)
        .batch_size(100)
        .gossip_interval(Duration::from_millis(5));
    cfg.batcher_flush_threshold = GEN_BATCH;
    cfg.batcher_flush_interval = Duration::from_millis(2);
    let stations = StageStations {
        batcher: stage_station(),
        filter: stage_station(),
        queue: stage_station(),
        store: stage_station(),
        sender: stage_station(),
        receiver: stage_station(),
    };
    let cluster = ChariotsCluster::launch(cfg, stations, LinkConfig::default()).expect("launch");
    let dc = cluster.dc(DatacenterId(0));
    let batchers = dc.batcher_handles();

    // Two clients, each pushing a fixed record count at machine rate.
    let shutdown = Shutdown::new();
    let client_counter = chariots_simnet::Counter::new();
    let mut client_threads = Vec::new();
    for c in 0..2usize {
        let batcher = batchers[c % batchers.len()].clone();
        let counter = client_counter.clone();
        let stop = shutdown.clone();
        client_threads.push(std::thread::spawn(move || {
            let mut limiter = RateLimiter::new(MACHINE_RATE * 0.99);
            let mut sent = 0u64;
            while sent < per_client && !stop.is_signaled() {
                limiter.pace(GEN_BATCH as u64);
                for _ in 0..GEN_BATCH {
                    let _ = batcher.send(Incoming::Local(LocalAppend {
                        tags: TagSet::new(),
                        body: Bytes::from(vec![0xCD; RECORD_BYTES]),
                        deps: VersionVector::new(1),
                        reply: None,
                        trace: None,
                    }));
                }
                sent += GEN_BATCH as u64;
                counter.add(GEN_BATCH as u64);
            }
        }));
    }

    // Sample client, one batcher, and the queue — the series Fig. 9 plots.
    let stage_counters = dc.stage_counters();
    let find = |prefix: &str| {
        stage_counters
            .iter()
            .find(|(n, _)| n.starts_with(prefix))
            .map(|(n, c)| (n.clone(), c.clone()))
            .expect("stage counter")
    };
    let sampled = vec![
        ("clients".to_string(), client_counter.clone()),
        find("batcher-0"),
        find("queue-0"),
        find("store-0"),
    ];
    let store_counter = find("store-0").1;
    let done = Arc::new(AtomicBool::new(false));
    let done_clone = Arc::clone(&done);
    let cap = if quick { 30 } else { 60 }; // max samples (safety)
    let mut ticks = 0usize;
    let ts = sample_until(&sampled, sample_interval, move || {
        ticks += 1;
        let finished = store_counter.get() >= total_records || ticks > cap;
        if finished {
            done_clone.store(true, Ordering::Release);
        }
        finished
    });

    shutdown.signal();
    for t in client_threads {
        let _ = t.join();
    }
    let metrics = cluster.metrics();
    cluster.shutdown();

    let mut report = Report::new(
        "fig9",
        "Figure 9: pipeline throughput over time (table-4 deployment, fixed workload)",
        ts.series
            .iter()
            .map(|s| format!("{} rec/s", s.name))
            .collect(),
    );
    let rates: Vec<Vec<f64>> = ts.series.iter().map(|s| s.rates(ts.interval)).collect();
    let n_ticks = rates.first().map(|r| r.len()).unwrap_or(0);
    for tick in 0..n_ticks {
        report.row(
            format!("t={:.1}s", (tick + 1) as f64 * ts.interval.as_secs_f64()),
            rates.iter().map(|r| r[tick]).collect(),
        );
    }
    report.note(
        "expect: clients and batchers finish first; the queue/store continue \
         draining the backlog afterwards (the paper's batchers finished at \
         42:30 while latter stages ran to 43:10)",
    );
    report.attach_metrics(metrics);
    report
}
