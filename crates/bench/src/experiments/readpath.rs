//! Read-path sweep: scatter-gather batched reads and client caching vs the
//! per-record serial baseline.
//!
//! The client's `read_many` groups positions by owning maintainer (the
//! journal's round-robin striping makes ownership computable client-side)
//! and issues one batch RPC per owning replica group, so the RPC count per
//! read window drops from O(positions) to O(maintainers). On top of that,
//! a bounded-staleness Head-of-Log cache and a bounded LRU entry cache
//! absorb repeat traffic — sound without invalidation because committed
//! positions are immutable and the HL only grows. This experiment fills a
//! two-maintainer deployment, then reads sliding windows of consecutive
//! positions three ways — one RPC per record, batched with caches off, and
//! batched with caches on — sweeping the window size, plus a
//! tag-indexed `read_rule` pair showing the pushed-down index lookup with
//! and without the HL cache.

use std::time::{Duration, Instant};

use bytes::Bytes;
use chariots_flstore::{AppendPayload, FLStore, FLStoreClient};
use chariots_simnet::{Counter, Histogram, MetricsSnapshot, Shutdown, StationConfig};
use chariots_types::{
    Condition, DatacenterId, FLStoreConfig, LId, ReadRule, Tag, TagSet, TagValue, ValuePredicate,
};

use crate::report::Report;

/// Closed-loop reader threads per run.
const WORKERS: usize = 8;

/// Tag key the populated records carry (drives the `read_rule` rows).
const TAG_KEY: &str = "bench.key";

/// How a run fetches its windows.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One `read` RPC per position (the pre-batching client).
    PerRecord,
    /// `read_many`, caches disabled: isolates the scatter-gather win.
    Batched,
    /// `read_many` with the HL and entry caches at their defaults.
    BatchedCached,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::PerRecord => "per-record",
            Mode::Batched => "batched",
            Mode::BatchedCached => "batched+cache",
        }
    }
}

struct RunResult {
    rate: f64,
    p99_us: f64,
    rpcs_per_1k: f64,
    hit_pct: f64,
}

/// Launches a deployment and fills it with `records` tagged records.
fn populate(records: usize) -> FLStore {
    let cfg = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(64)
        .indexers(1)
        .gossip_interval(Duration::from_millis(1));
    let store = FLStore::launch_with(DatacenterId(0), cfg, StationConfig::uncapped(), None)
        .expect("launch");
    let mut client = store.client();
    let mut appended = 0usize;
    while appended < records {
        let n = (records - appended).min(256);
        let batch: Vec<AppendPayload> = (0..n)
            .map(|i| {
                let mut tags = TagSet::new();
                let value = ((appended + i) % 100).to_string();
                tags.push(Tag::with_value(TAG_KEY, value.as_str()));
                AppendPayload::new(tags, Bytes::from(vec![0xAB; 64]))
            })
            .collect();
        client.append_batch(batch).expect("populate");
        appended += n;
    }
    // Readability: wait until the HL covers everything we appended.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if client.head_of_log().expect("hl") >= LId(records as u64) {
            break;
        }
        assert!(Instant::now() < deadline, "HL never reached {records}");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Postings reach the indexer via gossip, asynchronously from the HL:
    // wait until every populated key value is queryable so the rule rows
    // never race the indexer warm-up.
    let deadline = Instant::now() + Duration::from_secs(10);
    for value in 0..100 {
        let rule = ReadRule::where_(Condition::TagValue(
            TAG_KEY.into(),
            ValuePredicate::Eq(TagValue::Str(value.to_string())),
        ))
        .most_recent(1);
        loop {
            if !client.read_rule(&rule).expect("warm indexer").is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "indexer never saw value {value}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    store
}

/// A reader client configured for `mode`.
fn reader(store: &FLStore, mode: Mode) -> FLStoreClient {
    match mode {
        // Cache knobs default on (FLStoreConfig); the cache-free modes
        // turn them off explicitly so each row isolates one mechanism.
        Mode::PerRecord | Mode::Batched => store
            .client()
            .with_hl_cache_ttl(Duration::ZERO)
            .with_entry_cache_capacity(0),
        Mode::BatchedCached => store.client(),
    }
}

/// Runs one mode: `WORKERS` closed-loop readers fetching sliding windows
/// of `batch` consecutive positions (advancing by half a window, so a
/// window shares half its positions with the previous one — the repeat
/// traffic caches are meant to absorb).
fn run_one(
    store: &FLStore,
    records: usize,
    batch: usize,
    mode: Mode,
    measure: Duration,
    warmup: Duration,
) -> RunResult {
    let shutdown = Shutdown::new();
    let read = Counter::new();
    let latency = Histogram::new();
    let measuring = Counter::new(); // 0 = warmup, 1 = measuring
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let mut client = reader(store, mode);
        let shutdown = shutdown.clone();
        let read = read.clone();
        let latency = latency.clone();
        let measuring = measuring.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("readpath-{}-{w}", mode.name()))
                .spawn(move || {
                    // Spread the workers over the keyspace so they don't
                    // all hammer the same window in lockstep.
                    let mut start = (w * records) / WORKERS;
                    while !shutdown.is_signaled() {
                        let lids: Vec<LId> = (0..batch)
                            .map(|i| LId(((start + i) % records) as u64))
                            .collect();
                        let t0 = Instant::now();
                        let got = match mode {
                            Mode::PerRecord => {
                                let mut ok = 0u64;
                                for &lid in &lids {
                                    if client.read(lid).is_ok() {
                                        ok += 1;
                                    }
                                }
                                ok
                            }
                            Mode::Batched | Mode::BatchedCached => {
                                client.read_many(&lids).iter().filter(|r| r.is_ok()).count() as u64
                            }
                        };
                        if measuring.get() > 0 {
                            read.add(got);
                            latency.record_duration(t0.elapsed());
                        }
                        start = (start + batch / 2 + 1) % records;
                    }
                })
                .expect("spawn readpath client"),
        );
    }

    std::thread::sleep(warmup);
    let m0 = store.metrics();
    measuring.add(1);
    let t0 = Instant::now();
    std::thread::sleep(measure);
    let m1 = store.metrics();
    let elapsed = t0.elapsed().as_secs_f64();
    shutdown.signal();
    for w in workers {
        let _ = w.join();
    }

    let total = read.get();
    let rpcs = counter_delta(&m0, &m1, "dc0.flstore.read.rpc.count");
    let hits = counter_delta(&m0, &m1, "dc0.flstore.read.cache.hit");
    let misses = counter_delta(&m0, &m1, "dc0.flstore.read.cache.miss");
    RunResult {
        rate: total as f64 / elapsed,
        p99_us: latency.percentile(0.99) as f64 / batch as f64,
        rpcs_per_1k: if total == 0 {
            0.0
        } else {
            rpcs as f64 * 1_000.0 / total as f64
        },
        hit_pct: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 * 100.0 / (hits + misses) as f64
        },
    }
}

fn counter_delta(before: &MetricsSnapshot, after: &MetricsSnapshot, name: &str) -> u64 {
    let b = before.counters.get(name).copied().unwrap_or(0);
    let a = after.counters.get(name).copied().unwrap_or(0);
    a.saturating_sub(b)
}

/// Times tag-indexed `read_rule` evaluations (`TagValue` equality +
/// `most_recent(1)`, fully pushed down to the indexer) with the given
/// client, returning rules/s and the p99 in µs.
fn run_rules(mut client: FLStoreClient, measure: Duration) -> (f64, f64) {
    let latency = Histogram::new();
    let t0 = Instant::now();
    let mut done = 0u64;
    while t0.elapsed() < measure {
        let value = (done % 100).to_string();
        let rule = ReadRule::where_(Condition::TagValue(
            TAG_KEY.into(),
            ValuePredicate::Eq(TagValue::Str(value)),
        ))
        .most_recent(1);
        let r0 = Instant::now();
        let hits = client.read_rule(&rule).expect("read_rule");
        latency.record_duration(r0.elapsed());
        assert!(
            !hits.is_empty(),
            "populated key had no match (warmed above)"
        );
        done += 1;
    }
    (
        done as f64 / t0.elapsed().as_secs_f64(),
        latency.percentile(0.99) as f64,
    )
}

/// Runs the read-path sweep. `quick` trims the sizes and windows.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "readpath",
        "Read path: scatter-gather batching and client caches vs per-record reads",
        vec![
            "reads/s".into(),
            "p99/rec (µs)".into(),
            "rpcs/1k reads".into(),
            "cache hit %".into(),
        ],
    );
    let (measure, warmup) = if quick {
        (Duration::from_millis(400), Duration::from_millis(100))
    } else {
        (Duration::from_millis(1_200), Duration::from_millis(250))
    };
    let records = if quick { 2_000 } else { 10_000 };
    let batches: &[usize] = if quick { &[64] } else { &[16, 64, 256] };

    let store = populate(records);

    for &batch in batches {
        for mode in [Mode::PerRecord, Mode::Batched, Mode::BatchedCached] {
            let r = run_one(&store, records, batch, mode, measure, warmup);
            report.row(
                format!("{} batch={batch}", mode.name()),
                vec![r.rate, r.p99_us, r.rpcs_per_1k, r.hit_pct],
            );
        }
    }

    // Rule evaluation: the pushed-down index lookup, HL cache off vs on.
    // Rules/s lands in the reads/s column; the rpc and hit columns do not
    // apply (reported as 0).
    let uncached = store
        .client()
        .with_hl_cache_ttl(Duration::ZERO)
        .with_entry_cache_capacity(0);
    let (rate, p99) = run_rules(uncached, measure);
    report.row("rule most-recent (uncached)", vec![rate, p99, 0.0, 0.0]);
    let (rate, p99) = run_rules(store.client(), measure);
    report.row("rule most-recent (cached)", vec![rate, p99, 0.0, 0.0]);

    report.note(format!(
        "{WORKERS} closed-loop readers over {records} records on 2 \
         maintainers; windows of consecutive positions advance by half a \
         window (50% repeat traffic). p99 is per record (window p99 / \
         window size); rpcs/1k reads counts client-issued read RPCs \
         (dc0.flstore.read.rpc.count) — batching drops it from ~1000 to \
         ~1000·(maintainers/window)"
    ));
    report.note(
        "rule rows evaluate a TagValue-equality most_recent(1) rule: the \
         predicate, position bound, and limit are pushed into the indexer \
         lookup, so each rule costs one lookup RPC plus one batch read; \
         the cached row additionally serves the HL from the bounded-\
         staleness cache and candidates from the entry cache"
            .to_string(),
    );
    report.attach_metrics(store.metrics());
    store.shutdown();
    report
}

/// Smoke gate for CI: batching must beat per-record serving on throughput
/// and must collapse the per-read RPC count; the cached mode must actually
/// hit its caches.
///
/// The floors are far below what the full experiment shows (batching wins
/// ~the window size in round trips): smoke runs use short windows on
/// shared CI machines, and this gate exists to catch the batched path
/// regressing to per-record RPC behavior, not to benchmark the runner.
pub fn verify_smoke(report: &Report) -> Result<(), String> {
    let row = |needle: &str| -> Option<&crate::report::Row> {
        report.rows.iter().find(|r| r.label.starts_with(needle))
    };
    let per_record = row("per-record").ok_or("missing per-record row")?;
    let batched = row("batched batch=").ok_or("missing batched row")?;
    let cached = row("batched+cache").ok_or("missing batched+cache row")?;

    let base_rate = per_record.values[0];
    let batched_rate = batched.values[0];
    if base_rate <= 0.0 {
        return Err("per-record rate is zero — no reads completed".into());
    }
    let ratio = batched_rate / base_rate;
    if ratio < 1.5 {
        return Err(format!(
            "batched reads {batched_rate:.0}/s vs per-record {base_rate:.0}/s \
             = {ratio:.2}x, below the 1.5x smoke floor"
        ));
    }

    let base_rpcs = per_record.values[2];
    let batched_rpcs = batched.values[2];
    if base_rpcs < 900.0 {
        return Err(format!(
            "per-record mode issued {base_rpcs:.0} RPCs per 1k reads — \
             expected ~1000 (one per read); rpc accounting is broken"
        ));
    }
    if batched_rpcs > base_rpcs / 4.0 {
        return Err(format!(
            "batched mode issued {batched_rpcs:.0} RPCs per 1k reads vs \
             per-record {base_rpcs:.0} — expected at least a 4x collapse"
        ));
    }

    let hit_pct = cached.values[3];
    if hit_pct <= 0.0 {
        return Err("batched+cache mode recorded no cache hits".into());
    }
    Ok(())
}
