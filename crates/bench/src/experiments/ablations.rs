//! Ablations of the design choices called out in `DESIGN.md` §4:
//!
//! * **A1** — round-robin batch size (the paper's 1000-record rounds).
//! * **A2** — Head-of-Log gossip interval (§5.4 predicts latency, not
//!   throughput, depends on it).
//! * **A3** — whether the token carries deferred records (§6.2: "a design
//!   decision").
//! * **A5** — batcher flush threshold (batching vs append latency).
//!
//! (A4, pre- vs post-assignment, is the `baseline` experiment.)

use std::time::{Duration, Instant};

use chariots_core::{ChariotsCluster, StageStations};
use chariots_flstore::FLStore;
use chariots_simnet::{LinkConfig, Shutdown};
use chariots_types::{ChariotsConfig, DatacenterId, FLStoreConfig, TagSet};

use crate::private_station;
use crate::report::Report;
use crate::workload::spawn_flstore_generator;

/// A1 + A2: FLStore batch size and gossip interval, measured as achieved
/// throughput plus Head-of-Log lag (how far readers trail the appenders).
pub fn run_flstore_knobs(quick: bool) -> Report {
    let mut report = Report::new(
        "ablations_flstore",
        "Ablations A1/A2: batch size and gossip interval vs throughput and HL lag",
        vec!["achieved rec/s".into(), "HL lag (records)".into()],
    );
    let window = if quick {
        Duration::from_millis(500)
    } else {
        Duration::from_millis(1200)
    };

    let mut run_one = |label: String, batch: u64, gossip: Duration| {
        let store = FLStore::launch_with(
            DatacenterId(0),
            FLStoreConfig::new()
                .maintainers(3)
                .batch_size(batch)
                .gossip_interval(gossip),
            private_station(),
            None,
        )
        .expect("launch");
        let shutdown = Shutdown::new();
        let mut gens = Vec::new();
        for maintainer in store.maintainers() {
            gens.push(spawn_flstore_generator(
                maintainer.clone(),
                12_500.0,
                shutdown.clone(),
            ));
        }
        std::thread::sleep(Duration::from_millis(200));
        let counters: Vec<_> = store
            .maintainers()
            .iter()
            .map(|h| h.appended_counter())
            .collect();
        let s0: u64 = counters.iter().map(|c| c.get()).sum();
        let t0 = Instant::now();
        std::thread::sleep(window);
        let appended: u64 = counters.iter().map(|c| c.get()).sum();
        let rate = (appended - s0) as f64 / t0.elapsed().as_secs_f64();
        let hl = store.client().head_of_log().expect("hl").0;
        let lag = appended.saturating_sub(hl) as f64;
        shutdown.signal();
        for (_, h) in gens {
            let _ = h.join();
        }
        store.shutdown();
        report.row(label, vec![rate, lag]);
    };

    for batch in [10u64, 100, 1_000, 10_000] {
        run_one(
            format!("A1 batch={batch:>5}, gossip=5ms"),
            batch,
            Duration::from_millis(5),
        );
    }
    for gossip_ms in [1u64, 5, 20, 100] {
        run_one(
            format!("A2 batch=100, gossip={gossip_ms:>3}ms"),
            100,
            Duration::from_millis(gossip_ms),
        );
    }
    report.note(
        "A1: throughput is insensitive to batch size, but the HL lag (the \
         window readers trail appends by) grows with it — larger rounds \
         leave wider temporary gaps",
    );
    report.note(
        "A2: the fixed-size gossip costs no throughput; staleness of the \
         head grows with the interval, as §5.4 predicts",
    );
    report
}

/// A3: token-carries-deferred vs park-at-queue, under a reordering WAN.
pub fn run_token_policy(quick: bool) -> Report {
    let mut report = Report::new(
        "ablations_token",
        "Ablation A3: deferred records ride the token vs parked at queues",
        vec!["convergence time (ms)".into()],
    );
    let records = if quick { 60u64 } else { 200 };
    for (label, carries) in [("token carries deferred", true), ("parked at queue", false)] {
        let mut cfg = ChariotsConfig::new().datacenters(2);
        cfg.flstore = FLStoreConfig::new()
            .maintainers(2)
            .batch_size(16)
            .gossip_interval(Duration::from_millis(1));
        cfg.batcher_flush_threshold = 4;
        cfg.batcher_flush_interval = Duration::from_millis(1);
        cfg.propagation_interval = Duration::from_millis(2);
        cfg.stages.queues = 3; // the policy only matters with several queues
        cfg.token_carries_deferred = carries;
        // Heavy jitter reorders propagation, manufacturing deferrals.
        let wan = LinkConfig::with_latency(Duration::from_millis(2))
            .jitter(Duration::from_millis(8))
            .seed(5);
        let cluster = ChariotsCluster::launch(cfg, StageStations::default(), wan).expect("launch");
        let mut a = cluster.client(DatacenterId(0));
        let mut b = cluster.client(DatacenterId(1));
        let t0 = Instant::now();
        for i in 0..records / 2 {
            a.append(TagSet::new(), format!("a{i}")).expect("append");
            b.append(TagSet::new(), format!("b{i}")).expect("append");
        }
        let converged = cluster.wait_for_replication(records, Duration::from_secs(30));
        let elapsed = t0.elapsed().as_secs_f64() * 1000.0;
        cluster.shutdown();
        assert!(converged, "A3 run never converged");
        report.row(label, vec![elapsed]);
    }
    report.note(
        "both policies converge; carrying deferred records with the token \
         spends network I/O to cut the latency of blocked records (§6.2)",
    );
    report
}

/// Senders scaling (§6.2): "each sender is limited by the I/O bandwidth
/// of its network interface. To enable higher throughputs, more Senders
/// are needed at each datacenter." Cap the sender machines and measure
/// replication throughput as the fleet grows.
pub fn run_sender_scaling(quick: bool) -> Report {
    use chariots_core::StageStations;
    use chariots_types::{DatacenterId, StageCounts};
    let mut report = Report::new(
        "ablations_senders",
        "Senders stage scaling: replication throughput vs sender machines",
        vec!["replicated rec/s".into()],
    );
    let records: u64 = if quick { 3_000 } else { 8_000 };
    let sender_rate = 2_000.0; // each sender NIC caps at 2k rec/s
    for n_senders in [1usize, 2, 4] {
        let mut cfg = ChariotsConfig::new().datacenters(2);
        cfg.flstore = FLStoreConfig::new()
            .maintainers(4)
            .batch_size(100)
            .gossip_interval(Duration::from_millis(1));
        cfg.batcher_flush_threshold = 50;
        cfg.batcher_flush_interval = Duration::from_millis(1);
        cfg.propagation_interval = Duration::from_millis(1);
        cfg.stages = StageCounts {
            receivers: 4,
            batchers: 2,
            filters: 2,
            queues: 2,
            senders: n_senders,
        };
        let mut stations = StageStations::default();
        stations.sender = chariots_simnet::StationConfig::with_rate(sender_rate);
        let cluster = ChariotsCluster::launch(
            cfg,
            stations,
            LinkConfig::with_latency(Duration::from_millis(1)),
        )
        .expect("launch");
        let mut client = cluster.client(DatacenterId(0));
        let t0 = Instant::now();
        for i in 0..records {
            client
                .append_async(chariots_types::TagSet::new(), format!("r{i}"))
                .expect("append");
        }
        // Replication throughput = records / time until DC 1 has them all.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let mut b = cluster.dc(DatacenterId(1)).flstore().client();
            if b.head_of_log().expect("hl").0 >= records {
                break;
            }
            assert!(Instant::now() < deadline, "replication stalled");
            std::thread::sleep(Duration::from_millis(5));
        }
        let rate = records as f64 / t0.elapsed().as_secs_f64();
        cluster.shutdown();
        report.row(format!("{n_senders} sender(s) @ 2k rec/s each"), vec![rate]);
    }
    report.note(
        "replication throughput scales with the sender fleet until the          sources (or receivers) become the limit — §6.2's prescription for          sender NIC saturation",
    );
    report
}

/// A5: batcher flush threshold vs client-visible append latency.
pub fn run_flush_threshold(quick: bool) -> Report {
    let mut report = Report::new(
        "ablations_flush",
        "Ablation A5: batcher flush threshold vs append latency",
        vec!["mean append latency (ms)".into(), "p99 (ms)".into()],
    );
    let appends = if quick { 100 } else { 300 };
    for threshold in [1usize, 16, 64, 256] {
        let mut cfg = ChariotsConfig::new().datacenters(1);
        cfg.flstore = FLStoreConfig::new()
            .maintainers(2)
            .batch_size(16)
            .gossip_interval(Duration::from_millis(1));
        cfg.batcher_flush_threshold = threshold;
        cfg.batcher_flush_interval = Duration::from_millis(5);
        let cluster = ChariotsCluster::launch(cfg, StageStations::default(), LinkConfig::default())
            .expect("launch");
        let mut client = cluster.client(DatacenterId(0));
        let mut latencies: Vec<f64> = Vec::with_capacity(appends);
        for i in 0..appends {
            let t0 = Instant::now();
            client
                .append(TagSet::new(), format!("r{i}"))
                .expect("append");
            latencies.push(t0.elapsed().as_secs_f64() * 1000.0);
        }
        cluster.shutdown();
        latencies.sort_by(|a, b| a.total_cmp(b));
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        let p99 = latencies[(latencies.len() as f64 * 0.99) as usize - 1];
        report.row(format!("threshold {threshold:>4}"), vec![mean, p99]);
    }
    report.note(
        "a lone synchronous client pays the flush interval whenever its \
         append sits below the threshold: small thresholds flush per \
         append; large ones ride the timer",
    );
    report
}
