//! Figure 7: "The throughput of one maintainer while increasing the load
//! in a public cloud."
//!
//! Paper shape: achieved throughput tracks the target until ≈150 K
//! appends/s, then *degrades* to ≈120 K under overload. At 1/10 scale the
//! peak sits near 15 K and the plateau near 12 K.

use std::time::Duration;

use chariots_flstore::FLStore;
use chariots_simnet::{MetricsSnapshot, Shutdown};
use chariots_types::{DatacenterId, FLStoreConfig};

use crate::report::Report;
use crate::workload::{measure_rate, spawn_flstore_generator};
use crate::{public_station, SCALE};

/// Runs the Fig. 7 sweep. `quick` trims the measurement windows.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "fig7",
        "Figure 7: single-maintainer throughput vs target load (public cloud)",
        vec![
            "target (rec/s)".into(),
            "achieved (rec/s)".into(),
            "paper-scale".into(),
        ],
    );
    let (warmup, window) = if quick {
        (Duration::from_millis(200), Duration::from_millis(600))
    } else {
        (Duration::from_millis(400), Duration::from_millis(1500))
    };

    let targets: Vec<f64> = (1..=10).map(|i| i as f64 * 2_500.0).collect();
    let mut metrics = MetricsSnapshot::empty("fig7");
    for target in targets {
        let store = FLStore::launch_with(
            DatacenterId(0),
            FLStoreConfig::new()
                .maintainers(1)
                .batch_size(100)
                .gossip_interval(Duration::from_millis(5)),
            public_station(),
            None,
        )
        .expect("launch");
        let shutdown = Shutdown::new();
        // Two generator machines, like the paper's "records are generated
        // … from other machines".
        let maintainer = store.maintainers()[0].clone();
        let mut gens = Vec::new();
        for _ in 0..2 {
            gens.push(spawn_flstore_generator(
                maintainer.clone(),
                target / 2.0,
                shutdown.clone(),
            ));
        }
        let achieved = measure_rate(&maintainer.appended_counter(), warmup, window);
        shutdown.signal();
        for (_, h) in gens {
            let _ = h.join();
        }
        metrics.merge(&store.metrics());
        store.shutdown();
        report.row(
            format!("target {:>6.0}", target),
            vec![target, achieved, achieved * SCALE],
        );
    }
    report.note(
        "expect: achieved ≈ target below capacity, a peak near 15k \
         (paper: 150K), then degradation toward 12k (paper: ~120K) under \
         overload",
    );
    report.attach_metrics(metrics);
    report
}
