//! Collector-overhead experiment (`obs`): the telemetry plane must watch
//! without perturbing.
//!
//! Two identical unpaced append runs drain through a single-datacenter
//! pipeline: one with telemetry disabled, one with a background
//! [`Collector`] scraping every registry at its default 100 ms interval.
//! The table reports both throughputs, the overhead delta, and the
//! collector's own per-scrape cost. The collector run also produces the
//! exportable artifacts — the unified [`Timeline`] (`--timeline-out`) and
//! a Chrome `trace_event` JSON of pipeline spans plus journal events
//! (`--trace-out`) — and its end-of-run snapshot round-trips the
//! Prometheus text parser in the smoke gate.

use std::path::Path;
use std::time::{Duration, Instant};

use chariots_core::{ChariotsCluster, StageStations};
use chariots_simnet::{
    chrome_trace, parse_prometheus_text, prometheus_text, ChromeTrace, Collector, CollectorConfig,
    LinkConfig, MetricsSnapshot, Timeline,
};
use chariots_types::{ChariotsConfig, DatacenterId, FLStoreConfig, TagSet};

use crate::report::Report;

/// What the collector-enabled run hands back beside its throughput.
struct ObsArtifacts {
    timeline: Timeline,
    trace: ChromeTrace,
    scrape_p50_us: f64,
    scrape_p99_us: f64,
    ticks: u64,
    metrics: MetricsSnapshot,
}

/// One `throughput_sanity` run: `records` unpaced appends into DC 0,
/// timed until every record is replicated. With `with_collector` the
/// telemetry collector scrapes throughout at its default 100 ms interval.
fn run_one(with_collector: bool, records: u64) -> (f64, Option<ObsArtifacts>) {
    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(64)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 64;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    let cluster = ChariotsCluster::launch(cfg, StageStations::default(), LinkConfig::default())
        .expect("launch");

    let collector =
        with_collector.then(|| Collector::spawn(cluster.registries(), CollectorConfig::default()));

    let mut client = cluster.client(DatacenterId(0));
    let t0 = Instant::now();
    for i in 0..records {
        client
            .append_async(TagSet::new(), format!("obs{i}"))
            .expect("append");
    }
    assert!(
        cluster.wait_for_replication(records, Duration::from_secs(60)),
        "obs run never converged (collector={with_collector})"
    );
    let committed_per_s = records as f64 / t0.elapsed().as_secs_f64();

    let artifacts = collector.map(|handle| {
        let cost = handle.scrape_cost();
        let ticks = handle.ticks();
        let dc = cluster.dc(DatacenterId(0));
        let trace = chrome_trace(
            &[("dc0".to_string(), dc.tracer().clone())],
            &[
                ("dc0".to_string(), dc.registry().journal().clone()),
                (
                    "dc0.flstore".to_string(),
                    dc.flstore().registry().journal().clone(),
                ),
            ],
        );
        ObsArtifacts {
            timeline: handle.stop(),
            trace,
            scrape_p50_us: cost.p50 as f64,
            scrape_p99_us: cost.p99 as f64,
            ticks,
            metrics: cluster.metrics(),
        }
    });
    cluster.shutdown();
    (committed_per_s, artifacts)
}

pub(crate) fn write_json<T: serde::Serialize>(path: &Path, value: &T, what: &str) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let json = serde_json::to_vec_pretty(value).expect("serialize artifact");
    match std::fs::write(path, json) {
        Ok(()) => println!("{what}: {}", path.display()),
        Err(e) => eprintln!("could not write {what} to {}: {e}", path.display()),
    }
}

/// Runs the collector-overhead experiment, optionally exporting the
/// collector run's timeline and Chrome trace.
pub fn run(quick: bool, timeline_out: Option<&Path>, trace_out: Option<&Path>) -> Report {
    let records: u64 = if quick { 30_000 } else { 80_000 };
    let (off_rate, _) = run_one(false, records);
    let (on_rate, artifacts) = run_one(true, records);
    let art = artifacts.expect("collector run produces artifacts");
    // Positive = the collector cost throughput.
    let overhead_pct = (off_rate - on_rate) / off_rate * 100.0;

    let mut report = Report::new(
        "obs",
        "Telemetry collector overhead (throughput_sanity with/without 100ms scrapes)",
        vec![
            "committed/s".into(),
            "overhead (%)".into(),
            "scrape p50 (µs)".into(),
            "scrape p99 (µs)".into(),
            "ticks".into(),
        ],
    );
    report.row("collector off", vec![off_rate, 0.0, 0.0, 0.0, 0.0]);
    report.row(
        "collector 100ms",
        vec![
            on_rate,
            overhead_pct,
            art.scrape_p50_us,
            art.scrape_p99_us,
            art.ticks as f64,
        ],
    );
    report.note(format!(
        "{records} unpaced appends drained through a 1-DC pipeline, timed to \
         full replication; the collector scrapes every registry (pipeline + \
         FLStore) at 100ms into windowed counters, gauge samples, rolling \
         histogram windows, and the event journal — budget: < 5% throughput \
         overhead"
    ));
    report.note(format!(
        "timeline: {} ticks, {} journal events; producers pay nothing for \
         windowing (the collector diffs cumulative snapshots on its own \
         thread)",
        art.timeline.ticks.len(),
        art.timeline.events.len()
    ));
    if let Some(path) = timeline_out {
        write_json(path, &art.timeline, "timeline");
    }
    if let Some(path) = trace_out {
        write_json(path, &art.trace, "chrome trace");
    }
    report.attach_metrics(art.metrics);
    report
}

/// Smoke gate for CI: the collector must cost < 5% throughput, must have
/// actually scraped, and the end-of-run snapshot must round-trip the
/// Prometheus text parser.
pub fn verify_smoke(report: &Report) -> Result<(), String> {
    let find = |label: &str| -> Option<&crate::report::Row> {
        report.rows.iter().find(|r| r.label.starts_with(label))
    };
    let off = find("collector off").ok_or("missing collector-off row")?;
    let on = find("collector 100ms").ok_or("missing collector-on row")?;
    if off.values[0] <= 0.0 || on.values[0] <= 0.0 {
        return Err("a run committed no records".into());
    }
    if on.values[0] < off.values[0] * 0.95 {
        return Err(format!(
            "collector overhead {:.1}% exceeds the 5% budget \
             ({:.0}/s with vs {:.0}/s without)",
            on.values[1], on.values[0], off.values[0]
        ));
    }
    if on.values[4] < 1.0 {
        return Err("collector never completed a scrape".into());
    }
    let metrics = report
        .metrics
        .as_ref()
        .ok_or("no metrics snapshot attached")?;
    let text = prometheus_text(metrics);
    let parsed = parse_prometheus_text(&text)
        .map_err(|e| format!("prometheus exposition failed its parse check: {e}"))?;
    if parsed.samples.is_empty() {
        return Err("prometheus exposition parsed but carried no samples".into());
    }
    Ok(())
}
