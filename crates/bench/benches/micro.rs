//! Criterion micro-benchmarks of the hot paths: the per-record costs that
//! determine each simulated machine's real capacity.

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use chariots_core::stages::filter::{FilterCore, FilterRouting};
use chariots_core::{ATable, Incoming, Token};
use chariots_flstore::{
    indexer::IndexerCore, maintainer::AppendPayload, segment::SegmentStore, wal, EpochJournal,
    HlVector, MaintainerCore, RangeMap,
};
use chariots_types::{
    DatacenterId, Entry, LId, Limit, MaintainerId, Record, RecordId, TOId, Tag, TagSet, TagValue,
    VersionVector,
};

fn record(host: u16, toid: u64) -> Record {
    Record::new(
        RecordId::new(DatacenterId(host), TOId(toid)),
        VersionVector::from_entries(vec![TOId(toid), TOId(0)]),
        TagSet::new().with(Tag::with_value("key", "bench")),
        Bytes::from_static(&[0u8; 512]),
    )
}

fn bench_version_vectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("version_vector");
    let a = VersionVector::from_entries((0..5).map(TOId).collect());
    let b = VersionVector::from_entries((0..5).rev().map(TOId).collect());
    group.bench_function("dominates_n5", |bench| {
        bench.iter(|| std::hint::black_box(&a).dominates(std::hint::black_box(&b)))
    });
    group.bench_function("merge_n5", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut v| v.merge(std::hint::black_box(&b)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_atable(c: &mut Criterion) {
    let mut group = c.benchmark_group("atable");
    let mut t = ATable::new(5);
    for i in 0..5 {
        for j in 0..5 {
            t.observe(DatacenterId(i), DatacenterId(j), TOId((i * 7 + j) as u64));
        }
    }
    let other = t.clone();
    group.bench_function("merge_5x5", |bench| {
        bench.iter_batched(
            || t.clone(),
            |mut mine| mine.merge(std::hint::black_box(&other)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("gc_bound", |bench| {
        bench.iter(|| std::hint::black_box(&t).gc_bound(DatacenterId(2)))
    });
    group.finish();
}

fn bench_rangemap(c: &mut Criterion) {
    let mut group = c.benchmark_group("rangemap");
    let map = RangeMap::new(10, 1000);
    group.bench_function("owner_of", |bench| {
        bench.iter(|| map.owner_of(std::hint::black_box(LId(123_456))))
    });
    group.bench_function("lid_for", |bench| {
        bench.iter(|| map.lid_for(MaintainerId(7), std::hint::black_box(99_999)))
    });
    group.finish();
}

fn bench_maintainer_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintainer");
    group.throughput(Throughput::Elements(100));
    group.bench_function("append_batch_100", |bench| {
        bench.iter_batched(
            || {
                let journal = EpochJournal::new(RangeMap::new(3, 1000));
                let core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal);
                let batch: Vec<AppendPayload> = (0..100)
                    .map(|_| AppendPayload::new(TagSet::new(), Bytes::from_static(&[0u8; 512])))
                    .collect();
                (core, batch)
            },
            |(mut core, batch)| core.append_batch(batch).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_wal_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    let entry = Entry::new(LId(42), record(1, 7));
    group.bench_function("crc32_512B", |bench| {
        let data = vec![0xA5u8; 512];
        bench.iter(|| wal::crc32(std::hint::black_box(&data)))
    });
    let _ = entry; // encode/decode are internal; CRC dominates the path
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("ingest_in_order_1000", |bench| {
        bench.iter_batched(
            || {
                let core = FilterCore::with_routing(0, FilterRouting::new(1, 2));
                let records: Vec<Incoming> = (1..=1000)
                    .map(|t| Incoming::External(record(1, t)))
                    .collect();
                (core, records)
            },
            |(mut core, records)| {
                let mut out = 0;
                for r in records {
                    out += core.ingest(r).len();
                }
                out
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_token(c: &mut Criterion) {
    let mut group = c.benchmark_group("token");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("assign_external_1000", |bench| {
        bench.iter_batched(
            || {
                let token = Token::new(2);
                let records: Vec<Record> = (1..=1000).map(|t| record(1, t)).collect();
                (token, records)
            },
            |(mut token, records)| {
                for r in &records {
                    token.assign_external(r);
                }
                token.next_lid
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_indexer(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexer");
    let mut ix = IndexerCore::new();
    for i in 0..10_000u64 {
        ix.post("key", Some(TagValue::Int(i as i64)), LId(i));
    }
    group.bench_function("lookup_most_recent_100_of_10k", |bench| {
        bench.iter(|| ix.lookup("key", None, None, Limit::MostRecent(100)))
    });
    group.bench_function("post", |bench| {
        let mut i = 10_000u64;
        bench.iter(|| {
            ix.post("key", Some(TagValue::Int(i as i64)), LId(i));
            i += 1;
        })
    });
    group.finish();
}

fn bench_segment_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_store");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("insert_1000_in_order", |bench| {
        bench.iter_batched(
            || {
                let entries: Vec<Entry> = (0..1000)
                    .map(|i| Entry::new(LId(i), record(0, i + 1)))
                    .collect();
                (SegmentStore::new(256), entries)
            },
            |(mut store, entries)| {
                for (i, e) in entries.into_iter().enumerate() {
                    store.insert(i as u64, e).unwrap();
                }
                store.filled_prefix()
            },
            BatchSize::SmallInput,
        )
    });
    let mut filled = SegmentStore::new(256);
    for i in 0..10_000u64 {
        filled
            .insert(i, Entry::new(LId(i), record(0, i + 1)))
            .unwrap();
    }
    group.bench_function("get_of_10k", |bench| {
        bench.iter(|| filled.get(std::hint::black_box(7_777)).is_some())
    });
    group.finish();
}

fn bench_epoch_journal(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_journal");
    let mut journal = EpochJournal::new(RangeMap::new(2, 1000));
    journal.announce(LId(50_000), RangeMap::new(4, 1000));
    journal.announce(LId(200_000), RangeMap::new(8, 1000));
    group.bench_function("owner_of_3_epochs", |bench| {
        bench.iter(|| journal.owner_of(std::hint::black_box(LId(123_456))))
    });
    group.finish();
}

fn bench_hl_vector(c: &mut Criterion) {
    let mut group = c.benchmark_group("hl_vector");
    let mut hl = HlVector::new(10);
    for i in 0..10u16 {
        hl.update(MaintainerId(i), LId(1000 + i as u64));
    }
    group.bench_function("head_of_log_n10", |bench| {
        bench.iter(|| std::hint::black_box(&hl).head_of_log())
    });
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = configure();
    targets =
        bench_version_vectors,
        bench_atable,
        bench_rangemap,
        bench_maintainer_append,
        bench_wal_codec,
        bench_filter,
        bench_token,
        bench_indexer,
        bench_segment_store,
        bench_epoch_journal,
        bench_hl_vector,
}
criterion_main!(benches);
