//! # chariots-hyksos
//!
//! **Hyksos** — the causally consistent key-value store built over the
//! Chariots shared log (§4.1 of *Chariots*, EDBT 2015).
//!
//! "The value of keys reside in the shared log. A record holds one, or
//! more, put operation information. The order in the log reflects the
//! causal order of put operations. Thus, the current value of a key k is in
//! the record with the highest log position containing a put operation."
//!
//! Besides `put` and `get`, Hyksos offers **get transactions** returning a
//! causally consistent snapshot of several keys (Algorithm 1): pick the
//! Head of the Log as the snapshot position, then read each key's most
//! recent write *below* that position.
//!
//! Because the log is causal (not serial), two datacenters may observe
//! concurrent puts to the same key in different orders — the paper's Fig. 2
//! scenario, reproduced in this crate's tests.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use chariots_core::ChariotsClient;
use chariots_types::{
    ChariotsError, Condition, Entry, LId, ReadRule, Result, TOId, Tag, TagSet, TagValue,
    ValuePredicate,
};
use serde::{Deserialize, Serialize};

/// The tag key under which Hyksos indexes put operations.
pub const KEY_TAG: &str = "hyksos.key";

/// The payload of one record: a batch of put operations ("a record holds
/// one, or more, put operation information"), plus deletes — which, in a
/// log of immutable records, are just another accumulated change ("if an
/// application client desires to alter the effect of a record it can do so
/// by appending another record that exemplifies the desired change", §3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PutBatch {
    /// `key → value` pairs written atomically in one record.
    pub puts: BTreeMap<String, String>,
    /// Keys tombstoned by this record.
    #[serde(default)]
    pub deletes: std::collections::BTreeSet<String>,
}

impl PutBatch {
    /// A batch with one put.
    pub fn put(key: impl Into<String>, value: impl Into<String>) -> Self {
        let mut puts = BTreeMap::new();
        puts.insert(key.into(), value.into());
        PutBatch {
            puts,
            deletes: Default::default(),
        }
    }
}

impl PutBatch {
    fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("PutBatch serializes")
    }

    fn decode(body: &[u8]) -> Option<PutBatch> {
        serde_json::from_slice(body).ok()
    }
}

/// The result of a get: the value plus the position it was read from
/// (useful for session tokens and debugging).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Versioned {
    /// The value.
    pub value: String,
    /// The log position of the record that wrote it.
    pub lid: LId,
    /// The writing record's total-order id at its host.
    pub toid: TOId,
}

/// A Hyksos client session bound to one datacenter's Chariots instance.
///
/// Reads and writes flow through the underlying [`ChariotsClient`], so the
/// session inherits its causal context: a client always sees its own puts,
/// and anything it reads is a dependency of its subsequent puts.
pub struct HyksosClient {
    log: ChariotsClient,
}

impl HyksosClient {
    /// Wraps a Chariots client session.
    pub fn new(log: ChariotsClient) -> Self {
        HyksosClient { log }
    }

    /// Puts one key ("performing an Append operation with the new value of
    /// x, tagged with the key").
    pub fn put(&mut self, key: impl Into<String>, value: impl Into<String>) -> Result<LId> {
        self.put_all(PutBatch::put(key, value))
    }

    /// Deletes a key by appending a tombstone record; subsequent gets see
    /// `None` until a later put revives the key.
    pub fn delete(&mut self, key: impl Into<String>) -> Result<LId> {
        let mut deletes = std::collections::BTreeSet::new();
        deletes.insert(key.into());
        self.put_all(PutBatch {
            puts: BTreeMap::new(),
            deletes,
        })
    }

    /// Puts (and deletes) several keys atomically in one record.
    pub fn put_all(&mut self, batch: PutBatch) -> Result<LId> {
        let mut tags = TagSet::new();
        for key in batch.puts.keys().chain(batch.deletes.iter()) {
            tags.push(Tag::with_value(KEY_TAG, key.as_str()));
        }
        let body = batch.encode();
        let (_toid, lid) = self.log.append(tags, body)?;
        Ok(lid)
    }

    /// Gets the current value of `key`: "the record with the highest log
    /// position containing a put operation" to it.
    pub fn get(&mut self, key: &str) -> Result<Option<Versioned>> {
        let hl = self.log.head_of_log()?;
        self.get_below(key, hl)
    }

    /// The most recent value of `key` strictly below log position `below`.
    fn get_below(&mut self, key: &str, below: LId) -> Result<Option<Versioned>> {
        let rule = ReadRule::where_(Condition::TagValue(
            KEY_TAG.into(),
            ValuePredicate::Eq(TagValue::Str(key.into())),
        ))
        .and(Condition::LIdBelow(below))
        .most_recent(1);
        let hits = self.log.read_rule(&rule)?;
        Ok(hits.first().and_then(|e| extract(e, key)))
    }

    /// Get transaction (Algorithm 1): a causally consistent snapshot of
    /// several keys, all read as of the same Head-of-Log position.
    pub fn get_txn(&mut self, keys: &[&str]) -> Result<BTreeMap<String, Option<Versioned>>> {
        // Line 2: "request the head of the log position id" — there are no
        // gaps below it, so the snapshot is stable.
        let snapshot = self.log.head_of_log()?;
        // Lines 4-6: read each key's most recent write below the snapshot.
        let mut out = BTreeMap::new();
        for &key in keys {
            out.insert(key.to_owned(), self.get_below(key, snapshot)?);
        }
        Ok(out)
    }

    /// The snapshot position a get transaction would use right now.
    pub fn snapshot_position(&mut self) -> Result<LId> {
        self.log.head_of_log()
    }

    /// Access to the underlying log session (e.g. for mixing raw appends).
    pub fn log(&mut self) -> &mut ChariotsClient {
        &mut self.log
    }
}

/// Extracts `key`'s value from a put record. A tombstone yields `None`
/// from the caller's perspective — but the *record* still matched, so the
/// get must not fall through to an older put; the most-recent-1 rule
/// already guarantees that.
fn extract(entry: &Entry, key: &str) -> Option<Versioned> {
    let batch = PutBatch::decode(&entry.record.body)?;
    if batch.deletes.contains(key) {
        return None;
    }
    batch.puts.get(key).map(|v| Versioned {
        value: v.clone(),
        lid: entry.lid,
        toid: entry.record.toid(),
    })
}

/// Convenience error for malformed record bodies (foreign records carrying
/// the Hyksos tag).
pub fn malformed(lid: LId) -> ChariotsError {
    ChariotsError::Storage(format!("record at {lid} is not a Hyksos put batch"))
}

/// A materialized view of the store: the Tango-style pattern of replaying
/// the shared log into an in-memory state machine.
///
/// [`HyksosClient`] answers every get with an indexed log read — simple and
/// always fresh, but one round trip per key. `Materializer` instead scans
/// the log once, folds every put/delete into a map, and serves gets from
/// memory; `catch_up` advances it to the current Head of the Log. Because
/// the log is causally ordered, the view is always a causally consistent
/// snapshot — and any *historical* snapshot is reachable by stopping the
/// replay early ([`catch_up_to`](Materializer::catch_up_to), the paper's
/// "time travel").
pub struct Materializer {
    log: ChariotsClient,
    cursor: LId,
    view: BTreeMap<String, Versioned>,
}

impl Materializer {
    /// An empty view at the start of the log.
    pub fn new(log: ChariotsClient) -> Self {
        Materializer {
            log,
            cursor: LId::ZERO,
            view: BTreeMap::new(),
        }
    }

    /// Replays the log up to the current Head of the Log. Returns the new
    /// cursor.
    pub fn catch_up(&mut self) -> Result<LId> {
        let hl = self.log.head_of_log()?;
        self.catch_up_to(hl)
    }

    /// Replays the log up to `bound` (exclusive) — a historical snapshot
    /// if `bound` is below the head.
    ///
    /// Positions are fetched in chunks through the scatter-gather batch
    /// read path (one RPC per owning maintainer per chunk) rather than one
    /// round trip per record.
    pub fn catch_up_to(&mut self, bound: LId) -> Result<LId> {
        const CHUNK: usize = 256;
        while self.cursor < bound {
            let mut lids = Vec::with_capacity(CHUNK);
            while self.cursor < bound && lids.len() < CHUNK {
                lids.push(self.cursor);
                self.cursor = self.cursor.next();
            }
            for (&lid, result) in lids.iter().zip(self.log.read_many(&lids)) {
                let entry = match result {
                    Ok(e) => e,
                    Err(ChariotsError::GarbageCollected(_)) => continue,
                    Err(e) => {
                        // Resume exactly past the failed position, as the
                        // per-record loop did; the rest of the chunk stays
                        // unapplied for the next catch-up.
                        self.cursor = lid.next();
                        return Err(e);
                    }
                };
                let Some(batch) = PutBatch::decode(&entry.record.body) else {
                    continue; // not a Hyksos record
                };
                if !entry.record.tags.contains_key(KEY_TAG) {
                    continue;
                }
                for key in &batch.deletes {
                    self.view.remove(key);
                }
                for (key, value) in &batch.puts {
                    self.view.insert(
                        key.clone(),
                        Versioned {
                            value: value.clone(),
                            lid: entry.lid,
                            toid: entry.record.toid(),
                        },
                    );
                }
            }
        }
        Ok(self.cursor)
    }

    /// The materialized value of `key` (as of the last catch-up).
    pub fn get(&self, key: &str) -> Option<&Versioned> {
        self.view.get(key)
    }

    /// Number of live keys in the view.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// The replay cursor (first position NOT yet applied).
    pub fn cursor(&self) -> LId {
        self.cursor
    }

    /// Iterates the live keys in order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Versioned)> {
        self.view.iter()
    }

    /// Snapshots the view (cursor + live keys) to `path` as JSON. Paired
    /// with [`restore`](Materializer::restore), this gives the
    /// materializer the same O(delta) restart the maintainers get from
    /// their storage checkpoints: a restored view replays only the log
    /// suffix past the saved cursor instead of everything from LId 0.
    pub fn checkpoint(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let snap = ViewCheckpoint {
            cursor: self.cursor,
            view: self.view.clone(),
        };
        let bytes = serde_json::to_vec(&snap)
            .map_err(|e| ChariotsError::Storage(format!("view snapshot encode: {e}")))?;
        std::fs::write(path, bytes)
            .map_err(|e| ChariotsError::Storage(format!("view snapshot write: {e}")))
    }

    /// Replaces the view and cursor with a snapshot written by
    /// [`checkpoint`](Materializer::checkpoint). Call `catch_up` afterwards
    /// to fold in whatever the log accumulated since the snapshot.
    pub fn restore(&mut self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let bytes = std::fs::read(path)
            .map_err(|e| ChariotsError::Storage(format!("view snapshot read: {e}")))?;
        let snap: ViewCheckpoint = serde_json::from_slice(&bytes)
            .map_err(|e| ChariotsError::Storage(format!("view snapshot decode: {e}")))?;
        self.cursor = snap.cursor;
        self.view = snap.view;
        Ok(())
    }
}

/// Serialized form of a materialized view: the replay cursor plus every
/// live key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewCheckpoint {
    /// First log position NOT folded into the view.
    pub cursor: LId,
    /// The materialized `key → versioned value` map.
    pub view: BTreeMap<String, Versioned>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chariots_core::{ChariotsCluster, StageStations};
    use chariots_simnet::LinkConfig;
    use chariots_types::{ChariotsConfig, DatacenterId, FLStoreConfig};
    use std::time::{Duration, Instant};

    fn launch(n: usize) -> ChariotsCluster {
        let mut cfg = ChariotsConfig::new().datacenters(n);
        cfg.flstore = FLStoreConfig::new()
            .maintainers(2)
            .batch_size(8)
            .gossip_interval(Duration::from_millis(1));
        cfg.batcher_flush_threshold = 2;
        cfg.batcher_flush_interval = Duration::from_millis(1);
        cfg.propagation_interval = Duration::from_millis(2);
        ChariotsCluster::launch(
            cfg,
            StageStations::default(),
            LinkConfig::with_latency(Duration::from_millis(2)),
        )
        .unwrap()
    }

    fn wait_visible(client: &mut HyksosClient, key: &str, value: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(Some(v)) = client.get(key) {
                if v.value == value {
                    return;
                }
            }
            assert!(
                Instant::now() < deadline,
                "{key}={value} never became visible"
            );
            std::thread::sleep(Duration::from_millis(3));
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let cluster = launch(1);
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        kv.put("x", "10").unwrap();
        wait_visible(&mut kv, "x", "10");
        kv.put("x", "30").unwrap();
        wait_visible(&mut kv, "x", "30");
        cluster.shutdown();
    }

    #[test]
    fn get_missing_key_is_none() {
        let cluster = launch(1);
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        assert_eq!(kv.get("ghost").unwrap(), None);
        cluster.shutdown();
    }

    #[test]
    fn multi_put_is_atomic_in_one_record() {
        let cluster = launch(1);
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        let mut puts = BTreeMap::new();
        puts.insert("a".to_string(), "1".to_string());
        puts.insert("b".to_string(), "2".to_string());
        let lid = kv
            .put_all(PutBatch {
                puts,
                deletes: Default::default(),
            })
            .unwrap();
        wait_visible(&mut kv, "a", "1");
        let a = kv.get("a").unwrap().unwrap();
        let b = kv.get("b").unwrap().unwrap();
        assert_eq!(a.lid, lid);
        assert_eq!(b.lid, lid, "both came from the same record");
        cluster.shutdown();
    }

    #[test]
    fn puts_replicate_across_datacenters() {
        let cluster = launch(2);
        let mut kv_a = HyksosClient::new(cluster.client(DatacenterId(0)));
        let mut kv_b = HyksosClient::new(cluster.client(DatacenterId(1)));
        kv_a.put("y", "20").unwrap();
        wait_visible(&mut kv_b, "y", "20");
        cluster.shutdown();
    }

    #[test]
    fn get_txn_returns_consistent_snapshot() {
        let cluster = launch(1);
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        kv.put("x", "10").unwrap();
        kv.put("y", "20").unwrap();
        wait_visible(&mut kv, "y", "20");
        let snap = kv.get_txn(&["x", "y", "z"]).unwrap();
        assert_eq!(snap["x"].as_ref().unwrap().value, "10");
        assert_eq!(snap["y"].as_ref().unwrap().value, "20");
        assert!(snap["z"].is_none());
        cluster.shutdown();
    }

    #[test]
    fn get_txn_ignores_writes_above_snapshot() {
        // The paper's example: "although a more recent y value is
        // available, it was not returned … because it is not part of the
        // view of records up to position [the snapshot]".
        let cluster = launch(1);
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        kv.put("y", "20").unwrap();
        wait_visible(&mut kv, "y", "20");
        let snapshot = kv.snapshot_position().unwrap();
        // A later write lands above the snapshot…
        kv.put("y", "50").unwrap();
        wait_visible(&mut kv, "y", "50");
        // …but a read below the old snapshot still sees 20.
        let old = kv.get_below("y", snapshot).unwrap().unwrap();
        assert_eq!(old.value, "20");
        cluster.shutdown();
    }

    #[test]
    fn fig2_concurrent_puts_order_differently_but_both_arrive() {
        // Fig. 2: A puts x=30 while B puts x=10, concurrently.
        let cluster = launch(2);
        let mut kv_a = HyksosClient::new(cluster.client(DatacenterId(0)));
        let mut kv_b = HyksosClient::new(cluster.client(DatacenterId(1)));
        kv_a.put("x", "30").unwrap();
        kv_b.put("x", "10").unwrap();
        assert!(cluster.wait_for_replication(2, Duration::from_secs(10)));
        // Each datacenter sees *some* value — which one depends on its
        // local order of the concurrent puts (both are permissible).
        let va = kv_a.get("x").unwrap().unwrap().value;
        let vb = kv_b.get("x").unwrap().unwrap().value;
        assert!(va == "10" || va == "30");
        assert!(vb == "10" || vb == "30");
        cluster.shutdown();
    }

    #[test]
    fn causal_read_then_write_is_ordered_everywhere() {
        let cluster = launch(2);
        let mut kv_a = HyksosClient::new(cluster.client(DatacenterId(0)));
        let mut kv_b = HyksosClient::new(cluster.client(DatacenterId(1)));
        kv_a.put("x", "1").unwrap();
        wait_visible(&mut kv_b, "x", "1");
        // B's put of y is causally after reading x=1.
        kv_b.put("y", "saw-x").unwrap();
        // At A: whenever y is visible, x must be too (causal consistency).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = kv_a.get_txn(&["x", "y"]).unwrap();
            if let Some(y) = &snap["y"] {
                assert_eq!(y.value, "saw-x");
                let x = snap["x"].as_ref().expect("y visible without its cause");
                assert_eq!(x.value, "1");
                break;
            }
            assert!(Instant::now() < deadline, "y never replicated");
            std::thread::sleep(Duration::from_millis(3));
        }
        cluster.shutdown();
    }

    #[test]
    fn delete_tombstones_until_revived() {
        let cluster = launch(1);
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        kv.put("x", "1").unwrap();
        wait_visible(&mut kv, "x", "1");
        kv.delete("x").unwrap();
        // Deleted: get returns None once the tombstone is readable.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if kv.get("x").unwrap().is_none() {
                break;
            }
            assert!(Instant::now() < deadline, "tombstone never visible");
            std::thread::sleep(Duration::from_millis(3));
        }
        // A later put revives the key.
        kv.put("x", "2").unwrap();
        wait_visible(&mut kv, "x", "2");
        cluster.shutdown();
    }

    #[test]
    fn deletes_replicate_causally() {
        let cluster = launch(2);
        let mut kv_a = HyksosClient::new(cluster.client(DatacenterId(0)));
        let mut kv_b = HyksosClient::new(cluster.client(DatacenterId(1)));
        kv_a.put("gone", "soon").unwrap();
        wait_visible(&mut kv_b, "gone", "soon");
        // B reads, then deletes: causally after the put everywhere.
        kv_b.delete("gone").unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if kv_a.get("gone").unwrap().is_none() {
                break;
            }
            assert!(Instant::now() < deadline, "delete never replicated");
            std::thread::sleep(Duration::from_millis(3));
        }
        cluster.shutdown();
    }

    #[test]
    fn materializer_matches_client_gets() {
        let cluster = launch(1);
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        kv.put("a", "1").unwrap();
        kv.put("b", "2").unwrap();
        kv.put("a", "3").unwrap();
        kv.delete("b").unwrap();
        wait_visible(&mut kv, "a", "3");
        let deadline = Instant::now() + Duration::from_secs(10);
        while kv.get("b").unwrap().is_some() {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(3));
        }
        let mut view = Materializer::new(cluster.client(DatacenterId(0)));
        view.catch_up().unwrap();
        assert_eq!(view.get("a").unwrap().value, "3");
        assert!(view.get("b").is_none(), "tombstone must erase b");
        assert_eq!(view.len(), 1);
        cluster.shutdown();
    }

    #[test]
    fn materializer_checkpoint_restores_view_and_cursor() {
        let cluster = launch(1);
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        kv.put("a", "1").unwrap();
        kv.put("b", "2").unwrap();
        wait_visible(&mut kv, "b", "2");

        let dir = chariots_simnet::TestDir::new("hyksos-view-ckpt");
        let snap_path = dir.path().join("view.json");
        let mut view = Materializer::new(cluster.client(DatacenterId(0)));
        view.catch_up().unwrap();
        let cursor = view.cursor();
        view.checkpoint(&snap_path).unwrap();

        // More writes land after the snapshot.
        kv.put("a", "3").unwrap();
        wait_visible(&mut kv, "a", "3");

        // A fresh materializer restored from the snapshot resumes at the
        // saved cursor (not LId 0) and only needs the suffix.
        let mut restored = Materializer::new(cluster.client(DatacenterId(0)));
        restored.restore(&snap_path).unwrap();
        assert_eq!(restored.cursor(), cursor);
        assert_eq!(restored.get("a").unwrap().value, "1");
        assert_eq!(restored.get("b").unwrap().value, "2");
        restored.catch_up().unwrap();
        assert_eq!(restored.get("a").unwrap().value, "3");
        assert!(restored.cursor() > cursor);

        // A corrupt snapshot refuses to load rather than half-applying.
        std::fs::write(&snap_path, b"{not json").unwrap();
        let mut broken = Materializer::new(cluster.client(DatacenterId(0)));
        assert!(broken.restore(&snap_path).is_err());
        assert_eq!(
            broken.cursor(),
            LId::ZERO,
            "failed restore leaves it untouched"
        );
        cluster.shutdown();
    }

    #[test]
    fn materializer_time_travel_snapshots() {
        let cluster = launch(1);
        let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
        let lid1 = kv.put("x", "v1").unwrap();
        let _lid2 = kv.put("x", "v2").unwrap();
        wait_visible(&mut kv, "x", "v2");
        // A view replayed only past the first put sees v1.
        let mut old = Materializer::new(cluster.client(DatacenterId(0)));
        old.catch_up_to(LId(lid1.0 + 1)).unwrap();
        assert_eq!(old.get("x").unwrap().value, "v1");
        // Catching the same view up to the head moves it to v2.
        old.catch_up().unwrap();
        assert_eq!(old.get("x").unwrap().value, "v2");
        cluster.shutdown();
    }
}
