//! Geo-replication: three datacenters, causal ordering, a partition, and
//! garbage collection.
//!
//! ```sh
//! cargo run --example geo_replication
//! ```

use std::time::Duration;

use chariots::prelude::*;

fn fast_cfg(n: usize) -> ChariotsConfig {
    let mut cfg = ChariotsConfig::new().datacenters(n);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(16)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 4;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg.propagation_interval = Duration::from_millis(2);
    cfg
}

fn main() {
    let a = DatacenterId(0);
    let b = DatacenterId(1);
    let c = DatacenterId(2);

    println!("launching 3 datacenters with 20 ms WAN links…");
    let cluster = ChariotsCluster::launch(
        fast_cfg(3),
        StageStations::default(),
        LinkConfig::with_latency(Duration::from_millis(20)).jitter(Duration::from_millis(3)),
    )
    .expect("launch cluster");

    // A appends; B reads it, then appends something causally after it.
    let mut client_a = cluster.client(a);
    let mut client_b = cluster.client(b);
    client_a
        .append(TagSet::new().with(Tag::key("announcement")), "v1 released")
        .unwrap();
    assert!(cluster.wait_for_replication(1, Duration::from_secs(10)));
    let seen = client_b.read(LId(0)).unwrap();
    println!(
        "B read A's record: {:?}",
        String::from_utf8_lossy(&seen.record.body)
    );
    client_b
        .append(TagSet::new().with(Tag::key("reaction")), "congrats on v1!")
        .unwrap();
    assert!(cluster.wait_for_replication(2, Duration::from_secs(10)));

    // Causality: at every datacenter the announcement precedes the
    // reaction.
    for dc in [a, b, c] {
        let mut client = cluster.client(dc);
        let first = client.read(LId(0)).unwrap();
        let second = client.read(LId(1)).unwrap();
        println!(
            "{dc}: log = [{} from {}, {} from {}]",
            String::from_utf8_lossy(&first.record.body),
            first.record.host(),
            String::from_utf8_lossy(&second.record.body),
            second.record.host(),
        );
        assert_eq!(first.record.host(), a, "cause precedes effect at {dc}");
    }

    // Partition C away; A and B keep accepting appends (availability).
    println!("\npartitioning C away…");
    cluster.partition(a, c);
    cluster.partition(b, c);
    let mut client_a = cluster.client(a);
    client_a
        .append(TagSet::new(), "written during the partition")
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let mut c_store = cluster.dc(c).flstore().client();
    println!(
        "C's head of log while partitioned: {} (still 2 records)",
        c_store.head_of_log().unwrap()
    );

    println!("healing…");
    cluster.heal(a, c);
    cluster.heal(b, c);
    assert!(cluster.wait_for_replication(3, Duration::from_secs(10)));
    println!("C caught up: head of log = {}", {
        let mut s = cluster.dc(c).flstore().client();
        s.head_of_log().unwrap()
    });

    // Garbage collection: once every datacenter knows a record, it can go.
    std::thread::sleep(Duration::from_millis(200)); // let acks gossip back
    let bound = cluster.dc(a).run_gc().unwrap();
    println!("\nGC at A reclaimed everything below {bound}");

    cluster.shutdown();
    println!("done.");
}
