//! Strongly consistent transactions over the causal log: Message Futures
//! commit protocol with conflicting transfers from two datacenters.
//!
//! ```sh
//! cargo run --example bank_transactions
//! ```

use std::time::Duration;

use chariots::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(15);

fn main() {
    let mut cfg = ChariotsConfig::new().datacenters(2);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(16)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 2;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg.propagation_interval = Duration::from_millis(2);
    let cluster = ChariotsCluster::launch(
        cfg,
        StageStations::default(),
        LinkConfig::with_latency(Duration::from_millis(10)),
    )
    .expect("launch");

    let a = DatacenterId(0);
    let b = DatacenterId(1);
    let mut tm_a = TxnManager::new(cluster.dc(a), CommitPolicy::MessageFutures);
    let mut tm_b = TxnManager::new(cluster.dc(b), CommitPolicy::MessageFutures);

    // Seed the account from A.
    let mut seed = Transaction::new("seed");
    seed.write("alice", "100");
    seed.write("bob", "0");
    let out = tm_a.commit(seed, TIMEOUT).unwrap();
    println!("seed txn at A: {out:?}");

    // Wait until B sees the committed seed.
    let deadline = std::time::Instant::now() + TIMEOUT;
    while tm_b.get_committed("alice").unwrap().is_none() {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }

    // Two concurrent transfers race to spend Alice's balance — a classic
    // write-write conflict across datacenters.
    println!("\nracing two conflicting transfers (A and B both debit alice)…");
    let ha = std::thread::spawn(move || {
        let mut t = Transaction::new("transfer@A");
        let bal: i64 = tm_a
            .read(&mut t, "alice")
            .unwrap()
            .unwrap()
            .parse()
            .unwrap();
        t.write("alice", (bal - 70).to_string());
        t.write("bob", "70");
        let out = tm_a.commit(t, TIMEOUT).unwrap();
        (tm_a, out)
    });
    let hb = std::thread::spawn(move || {
        let mut t = Transaction::new("transfer@B");
        let bal: i64 = tm_b
            .read(&mut t, "alice")
            .unwrap()
            .unwrap()
            .parse()
            .unwrap();
        t.write("alice", (bal - 50).to_string());
        t.write("carol", "50");
        let out = tm_b.commit(t, TIMEOUT).unwrap();
        (tm_b, out)
    });
    let (mut tm_a, out_a) = ha.join().unwrap();
    let (mut tm_b, out_b) = hb.join().unwrap();
    println!("  A's transfer: {out_a:?}");
    println!("  B's transfer: {out_b:?}");
    let commits = [&out_a, &out_b]
        .iter()
        .filter(|o| matches!(o, Outcome::Committed(_)))
        .count();
    assert_eq!(commits, 1, "exactly one conflicting transfer commits");

    // Both datacenters converge on the same balances.
    let deadline = std::time::Instant::now() + TIMEOUT;
    loop {
        let a_alice = tm_a.get_committed("alice").unwrap();
        let b_alice = tm_b.get_committed("alice").unwrap();
        if a_alice == b_alice {
            println!("\nconverged: alice = {a_alice:?} at both datacenters");
            println!("  bob   = {:?}", tm_a.get_committed("bob").unwrap());
            println!("  carol = {:?}", tm_a.get_committed("carol").unwrap());
            break;
        }
        assert!(std::time::Instant::now() < deadline, "state diverged");
        std::thread::sleep(Duration::from_millis(5));
    }

    let (commits_a, aborts_a) = tm_a.stats();
    println!("\nmanager at A decided: {commits_a} commits, {aborts_a} aborts");

    cluster.shutdown();
    println!("done.");
}
