//! Quickstart: launch a single-datacenter FLStore, append, and read back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::time::{Duration, Instant};

use chariots::prelude::*;

fn main() {
    // A three-maintainer FLStore: the log round-robins across them in
    // batches of 100 positions, and appends need no sequencer.
    let store = FLStore::launch(
        DatacenterId(0),
        FLStoreConfig::new()
            .maintainers(3)
            .batch_size(100)
            .gossip_interval(Duration::from_millis(1)),
    )
    .expect("launch FLStore");
    let mut client = store.client();

    println!("appending 300 records across 3 log maintainers…");
    for i in 0..300 {
        let tags = TagSet::new().with(Tag::with_value("seq", i as i64));
        let (toid, lid) = client.append(tags, format!("record #{i}")).unwrap();
        if i % 100 == 0 {
            println!("  appended {toid} at {lid}");
        }
    }

    // Wait for the Head of the Log to pass every append: below it, the log
    // is guaranteed gap-free.
    let deadline = Instant::now() + Duration::from_secs(5);
    let hl = loop {
        let hl = client.head_of_log().unwrap();
        if hl >= LId(300) || Instant::now() > deadline {
            break hl;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    println!("head of the log: {hl} (records below are gap-free)");

    // Point reads by position.
    let entry = client.read(LId(0)).unwrap();
    println!(
        "read {}: body = {:?}",
        entry.lid,
        String::from_utf8_lossy(&entry.record.body)
    );

    // Rule-based reads through the tag indexers: "the most recent 5
    // records whose seq tag is ≥ 290".
    let rule = ReadRule::where_(Condition::TagValue(
        "seq".into(),
        ValuePredicate::Ge(TagValue::Int(290)),
    ))
    .most_recent(5);
    let hits = client.read_rule(&rule).unwrap();
    println!("rule matched {} records:", hits.len());
    for e in hits {
        println!(
            "  {} -> {:?}",
            e.lid,
            String::from_utf8_lossy(&e.record.body)
        );
    }

    store.shutdown();
    println!("done.");
}
