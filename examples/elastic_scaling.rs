//! Live elasticity (§6.3): grow every pipeline stage of a running
//! datacenter — batcher, queue, filter, and log maintainer — while a
//! client keeps appending, with zero disruption.
//!
//! ```sh
//! cargo run --example elastic_scaling
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chariots::prelude::*;

fn main() {
    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(1)
        .batch_size(32)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 8;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    let mut cluster = ChariotsCluster::launch(cfg, StageStations::default(), LinkConfig::default())
        .expect("launch");

    // A background client streams appends throughout.
    let stop = Arc::new(AtomicBool::new(false));
    let streamer = {
        let mut client = cluster.client(DatacenterId(0));
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sent = 0u64;
            while !stop.load(Ordering::Acquire) {
                client
                    .append(TagSet::new(), format!("record-{sent}"))
                    .expect("append during scaling");
                sent += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            sent
        })
    };

    let grow = |label: &str| {
        std::thread::sleep(Duration::from_millis(150));
        println!("… still streaming; {label}");
    };

    println!("deployment starts at 1 machine per stage; client streaming…");
    grow("adding a second batcher");
    cluster.dc_mut(DatacenterId(0)).add_batcher();

    grow("adding a second queue (token-ring insertion)");
    cluster.dc_mut(DatacenterId(0)).add_queue();

    grow("adding a second filter (future TOId reassignment)");
    cluster.dc_mut(DatacenterId(0)).add_filter(5_000);

    grow("adding a second log maintainer (future LId reassignment)");
    let hl = {
        let mut c = cluster.dc(DatacenterId(0)).flstore().client();
        c.head_of_log().unwrap()
    };
    cluster
        .dc_mut(DatacenterId(0))
        .flstore_add_maintainer(LId(hl.0 + 10_000))
        .unwrap();

    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Release);
    let sent = streamer.join().unwrap();
    println!("\nclient appended {sent} records across four expansions");

    // Verify: every record is in the log, dense and ordered.
    assert!(
        cluster.wait_for_replication(sent, Duration::from_secs(15)),
        "head of log never covered the stream"
    );
    let mut client = cluster.dc(DatacenterId(0)).flstore().client();
    let mut last_toid = 0u64;
    for l in 0..sent {
        let e = client.read(LId(l)).expect("dense log");
        assert_eq!(e.record.toid().0, last_toid + 1, "total order preserved");
        last_toid = e.record.toid().0;
    }
    println!("verified: {sent} records, dense LIds, unbroken total order");

    // Show where the epochs ended up.
    let journal = cluster.dc(DatacenterId(0)).flstore().controller().journal();
    println!("\nFLStore epoch journal:");
    for a in journal.assignments() {
        println!(
            "  {} from {}: {} maintainer(s), batch {}",
            a.epoch,
            a.start,
            a.map.num_maintainers(),
            a.map.batch_size()
        );
    }
    let plan = cluster.dc(DatacenterId(0)).routing_plan();
    println!("filter routing plan: {} epoch(s)", plan.read().len());

    cluster.shutdown();
    println!("done.");
}
