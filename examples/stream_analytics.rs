//! Photon-style multi-datacenter stream analytics: click/query streams
//! published at different datacenters, joined exactly once.
//!
//! ```sh
//! cargo run --example stream_analytics
//! ```

use std::time::{Duration, Instant};

use chariots::prelude::*;

fn main() {
    let mut cfg = ChariotsConfig::new().datacenters(2);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(16)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 2;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg.propagation_interval = Duration::from_millis(2);
    let cluster = ChariotsCluster::launch(
        cfg,
        StageStations::default(),
        LinkConfig::with_latency(Duration::from_millis(10)),
    )
    .expect("launch");

    let us = DatacenterId(0); // clicks land here
    let eu = DatacenterId(1); // queries land here

    // Publishers at each datacenter.
    let mut clicks = Publisher::new(cluster.client(us));
    let mut queries = Publisher::new(cluster.client(eu));
    println!("publishing 20 queries (EU) and 15 matching clicks (US)…");
    for q in 0..20 {
        queries
            .publish_keyed("queries", &format!("q{q}"), format!("query text {q}"))
            .unwrap();
    }
    for q in 0..15 {
        clicks
            .publish_keyed(
                "clicks",
                &format!("q{q}"),
                format!("click on result for q{q}"),
            )
            .unwrap();
    }
    assert!(cluster.wait_for_replication(35, Duration::from_secs(15)));

    // A partitioned reader group fans the click stream over two workers —
    // "readers can read from different log maintainers … without the need
    // of a centralized dispatcher".
    let mut worker0 = Reader::new(cluster.client(us), "clicks-w0", "clicks").partitioned(2, 0);
    let mut worker1 = Reader::new(cluster.client(us), "clicks-w1", "clicks").partitioned(2, 1);
    let mut clicks_seen = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while clicks_seen < 15 && Instant::now() < deadline {
        clicks_seen += worker0.poll(64).unwrap().len();
        clicks_seen += worker1.poll(64).unwrap().len();
        std::thread::sleep(Duration::from_millis(3));
    }
    println!("partitioned readers consumed {clicks_seen} click events exactly once");

    // The Photon-style join runs at the US datacenter over both streams.
    let mut joiner = Joiner::new(cluster.client(us), "clicks", "queries");
    let mut joined = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while joined.len() < 15 && Instant::now() < deadline {
        joined.extend(joiner.poll().unwrap());
        std::thread::sleep(Duration::from_millis(3));
    }
    println!(
        "joined {} click/query pairs; {} queries still awaiting clicks",
        joined.len(),
        joiner.pending()
    );
    for j in joined.iter().take(3) {
        println!(
            "  {}: {:?} ⋈ {:?}",
            j.key,
            String::from_utf8_lossy(&j.left.body),
            String::from_utf8_lossy(&j.right.body),
        );
    }
    assert_eq!(joined.len(), 15);
    assert_eq!(joiner.pending(), 5, "q15..q19 have no clicks yet");

    // Checkpoint-and-crash: the reader resumes with no replays.
    let mut reader = Reader::new(cluster.client(us), "auditor", "queries");
    let before = reader.poll(usize::MAX).unwrap().len();
    reader.checkpoint().unwrap();
    drop(reader); // crash
    queries
        .publish_keyed("queries", "q99", "late query")
        .unwrap();
    let mut revived = Reader::recover(cluster.client(us), "auditor", "queries").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut after = Vec::new();
    while after.is_empty() && Instant::now() < deadline {
        after = revived.poll(64).unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    println!(
        "auditor read {before} events, crashed, recovered, and read only the {} new one(s)",
        after.len()
    );
    assert_eq!(after.len(), 1);

    cluster.shutdown();
    println!("done.");
}
