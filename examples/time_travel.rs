//! Time travel and auditing: "the log provides a trace of all application
//! events providing a natural framework for tasks like debugging,
//! auditing, checkpointing, and time travel" (§1).
//!
//! This example writes a key-value history, reconstructs the store's state
//! at several historical log positions with the [`Materializer`], then
//! archives + garbage-collects the hot prefix and shows the history is
//! still auditable from cold storage.
//!
//! ```sh
//! cargo run --example time_travel
//! ```

use std::time::{Duration, Instant};

use chariots::flstore::{ArchiveReader, ArchiveWriter};
use chariots::prelude::*;

fn main() {
    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(8)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 1;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    let cluster = ChariotsCluster::launch(cfg, StageStations::default(), LinkConfig::default())
        .expect("launch");

    // A little history: an account balance over time.
    let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
    let mut checkpoints = Vec::new();
    for (step, balance) in [100i64, 70, 120, 45].iter().enumerate() {
        let lid = kv.put("alice.balance", balance.to_string()).unwrap();
        checkpoints.push((step, lid, *balance));
    }
    // Wait until the full history is readable.
    let deadline = Instant::now() + Duration::from_secs(5);
    while kv.snapshot_position().unwrap() < LId(4) {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }

    // Time travel: the balance as of each historical position.
    println!("balance history (reconstructed by log replay):");
    for (step, lid, expected) in &checkpoints {
        let mut view = Materializer::new(cluster.client(DatacenterId(0)));
        view.catch_up_to(LId(lid.0 + 1)).unwrap();
        let v = view.get("alice.balance").unwrap();
        println!("  after write #{step} ({}): balance = {}", lid, v.value);
        assert_eq!(v.value, expected.to_string());
    }

    // Archive + GC the first half; the audit trail survives in cold
    // storage.
    let path = std::env::temp_dir().join(format!("chariots-example-{}.arc", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut writer = ArchiveWriter::open(&path).unwrap();
    cluster
        .dc(DatacenterId(0))
        .flstore()
        .archive_and_gc(LId(2), &mut writer)
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));

    let mut hot = cluster.dc(DatacenterId(0)).flstore().client();
    assert!(matches!(
        hot.read(LId(0)),
        Err(ChariotsError::GarbageCollected(_))
    ));
    println!(
        "\nhot log reclaimed positions below {}",
        writer.archived_below()
    );

    let cold = ArchiveReader::open(&path).unwrap();
    println!("cold archive holds {} records:", cold.len());
    for entry in cold.iter() {
        println!(
            "  {} from {}: {}",
            entry.lid,
            entry.record.host(),
            String::from_utf8_lossy(&entry.record.body)
        );
    }
    assert_eq!(cold.len(), 2);

    cluster.shutdown();
    let _ = std::fs::remove_file(&path);
    println!("done.");
}
