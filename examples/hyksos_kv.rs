//! Hyksos: the paper's Fig. 2 scenario on a real two-datacenter
//! deployment — concurrent puts, causal ordering, and get transactions.
//!
//! ```sh
//! cargo run --example hyksos_kv
//! ```

use std::time::{Duration, Instant};

use chariots::prelude::*;

fn main() {
    let mut cfg = ChariotsConfig::new().datacenters(2);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(16)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 2;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg.propagation_interval = Duration::from_millis(2);
    let cluster = ChariotsCluster::launch(
        cfg,
        StageStations::default(),
        LinkConfig::with_latency(Duration::from_millis(15)),
    )
    .expect("launch");

    let a = DatacenterId(0);
    let b = DatacenterId(1);
    let mut kv_a = HyksosClient::new(cluster.client(a));
    let mut kv_b = HyksosClient::new(cluster.client(b));

    // Time 1 of Fig. 2: concurrent puts to x at A and B, plus y and z.
    println!("concurrent puts: A: x=30, y=20 | B: x=10, z=40");
    kv_a.put("x", "30").unwrap();
    kv_a.put("y", "20").unwrap();
    kv_b.put("x", "10").unwrap();
    kv_b.put("z", "40").unwrap();
    assert!(cluster.wait_for_replication(4, Duration::from_secs(10)));

    // Both values of x exist in both logs; which one a Get returns depends
    // on each datacenter's (causally valid) order of the concurrent puts.
    let xa = kv_a.get("x").unwrap().unwrap();
    let xb = kv_b.get("x").unwrap().unwrap();
    println!("Get(x) at A -> {} ; at B -> {}", xa.value, xb.value);

    // A get transaction: a consistent snapshot of x, y, z as of one head
    // position — Algorithm 1.
    let snapshot = kv_a.get_txn(&["x", "y", "z"]).unwrap();
    println!("get_txn at A:");
    for (k, v) in &snapshot {
        match v {
            Some(v) => println!("  {k} = {} (from {})", v.value, v.lid),
            None => println!("  {k} = ∅"),
        }
    }
    assert_eq!(snapshot["y"].as_ref().unwrap().value, "20");
    assert_eq!(snapshot["z"].as_ref().unwrap().value, "40");

    // Time 2: more puts; causality carries reads forward.
    kv_a.put("y", "50").unwrap();
    kv_b.put("z", "60").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = kv_a.get_txn(&["y", "z"]).unwrap();
        let y = snap["y"].as_ref().map(|v| v.value.clone());
        let z = snap["z"].as_ref().map(|v| v.value.clone());
        if y.as_deref() == Some("50") && z.as_deref() == Some("60") {
            println!("after propagation, A sees y=50, z=60");
            break;
        }
        assert!(Instant::now() < deadline, "propagation stalled");
        std::thread::sleep(Duration::from_millis(5));
    }

    cluster.shutdown();
    println!("done.");
}
